#include "infer/mcsat.h"

#include <cmath>

namespace tuffy {

bool SampleSat(const Problem& problem, const SampleSatOptions& options,
               Rng* rng, std::vector<uint8_t>* out) {
  // All clauses are hard constraints here; weight 1 keeps the annealing
  // deltas well-scaled.
  Problem hard = problem;
  for (SearchClause& c : hard.clauses) {
    c.hard = false;
    c.weight = 1.0;
  }
  WalkSatState state(&hard, /*hard_weight=*/1.0);
  state.RandomAssignment(rng);

  for (uint64_t flip = 0; flip < options.max_flips; ++flip) {
    if (!state.HasViolated()) {
      *out = state.truth();
      return true;
    }
    if (rng->NextDouble() < options.p_anneal) {
      // Simulated-annealing move: random atom, Metropolis acceptance.
      AtomId a = static_cast<AtomId>(rng->Uniform(hard.num_atoms));
      double delta = state.FlipDelta(a);
      if (delta <= 0 ||
          rng->NextDouble() < std::exp(-delta / options.temperature)) {
        state.Flip(a);
      }
    } else {
      // WalkSAT move on a random violated clause.
      uint32_t ci = state.SampleViolated(rng);
      const SearchClause& clause = hard.clauses[ci];
      AtomId chosen;
      if (rng->NextDouble() <= options.p_random) {
        chosen = LitAtom(clause.lits[rng->Uniform(clause.lits.size())]);
      } else {
        double best_delta = std::numeric_limits<double>::infinity();
        chosen = LitAtom(clause.lits[0]);
        for (Lit l : clause.lits) {
          double d = state.FlipDelta(LitAtom(l));
          if (d < best_delta) {
            best_delta = d;
            chosen = LitAtom(l);
          }
        }
      }
      state.Flip(chosen);
    }
  }
  if (!state.HasViolated()) {
    *out = state.truth();
    return true;
  }
  return false;
}

McSatResult RunMcSat(const Problem& problem, const McSatOptions& options,
                     uint64_t seed) {
  Rng rng(seed);
  McSatResult result;
  result.marginals.assign(problem.num_atoms, 0.0);

  // Initial state: satisfy the hard clauses with plain WalkSAT.
  Problem hard_only;
  hard_only.num_atoms = problem.num_atoms;
  for (const SearchClause& c : problem.clauses) {
    if (c.hard) hard_only.clauses.push_back(c);
  }
  WalkSatOptions init_opts;
  init_opts.max_flips = options.init_flips;
  init_opts.hard_weight = options.hard_weight;
  WalkSat init_search(&hard_only, init_opts, &rng);
  std::vector<uint8_t> state = init_search.Run().best_truth;
  if (state.empty()) state.assign(problem.num_atoms, 0);

  std::vector<double> true_counts(problem.num_atoms, 0.0);
  int kept = 0;
  int total_rounds = options.burn_in + options.num_samples;
  for (int round = 0; round < total_rounds; ++round) {
    // Build the slice M.
    Problem m;
    m.num_atoms = problem.num_atoms;
    for (const SearchClause& c : problem.clauses) {
      bool is_true = false;
      for (Lit l : c.lits) {
        if ((state[LitAtom(l)] != 0) == LitPositive(l)) {
          is_true = true;
          break;
        }
      }
      if (c.hard) {
        SearchClause hc = c;
        m.clauses.push_back(std::move(hc));
        continue;
      }
      if (c.weight > 0 && is_true) {
        if (rng.NextDouble() < 1.0 - std::exp(-c.weight)) {
          m.clauses.push_back(c);
        }
      } else if (c.weight < 0 && !is_true) {
        // A false negative-weight clause is currently *satisfying* the
        // model (not violated); keep it false via unit constraints on
        // the negations of its literals.
        if (rng.NextDouble() < 1.0 - std::exp(c.weight)) {
          for (Lit l : c.lits) {
            SearchClause unit;
            unit.weight = 1.0;
            unit.lits.push_back(-l);
            m.clauses.push_back(std::move(unit));
          }
        }
      }
    }
    std::vector<uint8_t> next;
    if (SampleSat(m, options.sample_sat, &rng, &next)) {
      state = std::move(next);
    }
    // else: keep the previous state (rejected move).
    if (round >= options.burn_in) {
      for (size_t a = 0; a < problem.num_atoms; ++a) {
        true_counts[a] += state[a] != 0 ? 1.0 : 0.0;
      }
      ++kept;
    }
  }
  if (kept > 0) {
    for (size_t a = 0; a < problem.num_atoms; ++a) {
      result.marginals[a] = true_counts[a] / kept;
    }
  }
  result.samples_used = kept;
  return result;
}

}  // namespace tuffy
