#include "infer/mcsat.h"

#include <algorithm>
#include <cmath>

namespace tuffy {

namespace {

/// SampleSAT moves (WalkSAT + simulated annealing) on a state whose arena
/// holds the slice's constraints as unit-cost positive clauses. Runs until
/// every constraint is satisfied or the flip budget is exhausted. The
/// caller seeds the assignment (MC-SAT requires a random restart).
bool SampleSatMoves(WalkSatState* state, const SampleSatOptions& options,
                    Rng* rng, std::vector<uint8_t>* out) {
  const ClauseArena& arena = state->arena();
  for (uint64_t flip = 0; flip < options.max_flips; ++flip) {
    if (!state->HasViolated()) {
      *out = state->truth();
      return true;
    }
    if (rng->NextDouble() < options.p_anneal) {
      // Simulated-annealing move: random atom, Metropolis acceptance.
      AtomId a = static_cast<AtomId>(rng->Uniform(arena.num_atoms));
      double delta = state->FlipDelta(a);
      if (delta <= 0 ||
          rng->NextDouble() < std::exp(-delta / options.temperature)) {
        state->Flip(a);
      }
    } else {
      // WalkSAT move on a random violated clause.
      state->Flip(ChooseWalkSatMove(*state, options.p_random, rng));
    }
  }
  if (!state->HasViolated()) {
    *out = state->truth();
    return true;
  }
  return false;
}

}  // namespace

bool SampleSat(const Problem& problem, const SampleSatOptions& options,
               Rng* rng, std::vector<uint8_t>* out) {
  // Every clause becomes a unit-cost constraint directly in the arena —
  // no copy of the Problem is made; weight 1 keeps the annealing deltas
  // well-scaled.
  ClauseArena constraints;
  constraints.Clear();
  for (const SearchClause& c : problem.clauses) {
    constraints.AddClause(c.lits.data(), c.lits.size(), 1.0, false);
  }
  constraints.Finish(problem.num_atoms);
  WalkSatState state(&constraints, /*hard_weight=*/1.0);
  state.RandomAssignment(rng);
  return SampleSatMoves(&state, options, rng, out);
}

McSatResult RunMcSat(const Problem& problem, const McSatOptions& options,
                     uint64_t seed) {
  Rng rng(seed);
  McSatResult result;
  result.marginals.assign(problem.num_atoms, 0.0);

  // Initial state: satisfy the hard clauses with plain WalkSAT.
  Problem hard_only;
  hard_only.num_atoms = problem.num_atoms;
  for (const SearchClause& c : problem.clauses) {
    if (c.hard) hard_only.clauses.push_back(c);
  }
  WalkSatOptions init_opts;
  init_opts.max_flips = options.init_flips;
  init_opts.hard_weight = options.hard_weight;
  WalkSat init_search(&hard_only, init_opts, &rng);
  std::vector<uint8_t> state = init_search.Run().best_truth;
  if (state.empty()) state.assign(problem.num_atoms, 0);

  // One slice arena and one search state, allocated once and reused for
  // every sample: each round rewrites the arena in place (capacity is
  // retained) and re-attaches the sampler — no per-sample Problem copy,
  // no per-sample occurrence-list allocation.
  ClauseArena slice;
  slice.Clear();
  WalkSatState sampler(&slice, /*hard_weight=*/1.0);
  std::vector<uint8_t> next;

  std::vector<double> true_counts(problem.num_atoms, 0.0);

  // Formula-count accumulators (see McSatOptions::count_index). The
  // slice loop of round r evaluates every clause's truth in the state
  // left by round r-1, so those evaluations double as the count
  // statistics of the sample kept at the end of round r-1; the final
  // round's sample is scanned once after the loop.
  const RuleCountIndex* count_index = options.count_index;
  const size_t num_rules =
      count_index != nullptr ? static_cast<size_t>(count_index->num_rules) : 0;
  std::vector<double> sample_counts(num_rules, 0.0);
  std::vector<double> count_sum(num_rules, 0.0);
  std::vector<double> count_sum_sq(num_rules, 0.0);
  auto fold_sample_counts = [&]() {
    for (size_t r = 0; r < num_rules; ++r) {
      count_sum[r] += sample_counts[r];
      count_sum_sq[r] += sample_counts[r] * sample_counts[r];
      sample_counts[r] = 0.0;
    }
  };

  int kept = 0;
  int total_rounds = options.burn_in + options.num_samples;
  for (int round = 0; round < total_rounds; ++round) {
    const bool collect_counts = count_index != nullptr &&
                                round > options.burn_in;
    // Build the slice M as unit-cost constraints in the reused arena.
    slice.Clear();
    for (size_t ci = 0; ci < problem.clauses.size(); ++ci) {
      const SearchClause& c = problem.clauses[ci];
      bool is_true = false;
      for (Lit l : c.lits) {
        if ((state[LitAtom(l)] != 0) == LitPositive(l)) {
          is_true = true;
          break;
        }
      }
      if (collect_counts && is_true) {
        count_index->AccumulateClause(static_cast<uint32_t>(ci), 1.0,
                                      &sample_counts);
      }
      if (c.hard) {
        slice.AddClause(c.lits.data(), c.lits.size(), 1.0, false);
        continue;
      }
      if (c.weight > 0 && is_true) {
        if (rng.NextDouble() < 1.0 - std::exp(-c.weight)) {
          slice.AddClause(c.lits.data(), c.lits.size(), 1.0, false);
        }
      } else if (c.weight < 0 && !is_true) {
        // A false negative-weight clause is currently *satisfying* the
        // model (not violated); keep it false via unit constraints on
        // the negations of its literals.
        if (rng.NextDouble() < 1.0 - std::exp(c.weight)) {
          for (Lit l : c.lits) {
            Lit unit = -l;
            slice.AddClause(&unit, 1, 1.0, false);
          }
        }
      }
    }
    slice.Finish(problem.num_atoms);
    if (collect_counts) fold_sample_counts();
    sampler.Attach(&slice, /*hard_weight=*/1.0);
    sampler.RandomAssignment(&rng);
    if (SampleSatMoves(&sampler, options.sample_sat, &rng, &next)) {
      state.swap(next);
    }
    // else: keep the previous state (rejected move). The retained state
    // *is* the round's sample — both the marginals below and the count
    // statistics (which see it in the next round's slice scan, or the
    // final pass) count it again, so `kept` always equals num_samples
    // and the two estimators average over the same sample multiset.
    if (round >= options.burn_in) {
      for (size_t a = 0; a < problem.num_atoms; ++a) {
        true_counts[a] += state[a] != 0 ? 1.0 : 0.0;
      }
      ++kept;
    }
  }
  if (count_index != nullptr && kept > 0) {
    // The slice loops covered all kept samples but the last; scan it.
    for (size_t ci = 0; ci < problem.clauses.size(); ++ci) {
      const SearchClause& c = problem.clauses[ci];
      for (Lit l : c.lits) {
        if ((state[LitAtom(l)] != 0) == LitPositive(l)) {
          count_index->AccumulateClause(static_cast<uint32_t>(ci), 1.0,
                                        &sample_counts);
          break;
        }
      }
    }
    fold_sample_counts();
    result.formula_count_mean.resize(num_rules);
    result.formula_count_var.resize(num_rules);
    for (size_t r = 0; r < num_rules; ++r) {
      const double mean = count_sum[r] / kept;
      result.formula_count_mean[r] = mean;
      result.formula_count_var[r] =
          std::max(0.0, count_sum_sq[r] / kept - mean * mean);
    }
  }
  if (kept > 0) {
    for (size_t a = 0; a < problem.num_atoms; ++a) {
      result.marginals[a] = true_counts[a] / kept;
    }
  }
  result.samples_used = kept;
  return result;
}

}  // namespace tuffy
