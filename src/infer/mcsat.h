#ifndef TUFFY_INFER_MCSAT_H_
#define TUFFY_INFER_MCSAT_H_

#include <cstdint>
#include <vector>

#include "ground/rule_count_index.h"
#include "infer/problem.h"
#include "infer/walksat.h"
#include "util/rng.h"

namespace tuffy {

struct SampleSatOptions {
  uint64_t max_flips = 100000;
  /// Probability of a simulated-annealing move instead of a WalkSAT move
  /// (Wei et al.: SampleSAT = WalkSAT + annealing for near-uniform
  /// sampling of satisfying assignments).
  double p_anneal = 0.5;
  double temperature = 0.5;
  double p_random = 0.5;
};

/// Draws a (near-uniform) satisfying assignment of `problem`, whose
/// clauses are all treated as hard constraints. Starts from a *random*
/// assignment — the random restart plus the annealing moves are what make
/// successive MC-SAT samples mix. Returns true on success and writes the
/// sample to `out`. The constraints are staged directly into a CSR clause
/// arena; the problem itself is never copied.
bool SampleSat(const Problem& problem, const SampleSatOptions& options,
               Rng* rng, std::vector<uint8_t>* out);

struct McSatOptions {
  int num_samples = 200;
  int burn_in = 20;
  SampleSatOptions sample_sat;
  /// Flip budget for the initial hard-clause solution.
  uint64_t init_flips = 100000;
  double hard_weight = 1e6;
  /// If non-null, per-first-order-formula satisfied-grounding counts are
  /// accumulated over the kept samples (mean and variance land in
  /// McSatResult) — the E[n_i] / Var[n_i] statistics weight learning
  /// consumes. The index must be built over the same clause ids as
  /// `problem.clauses` and outlive the run. The accumulation rides the
  /// per-round slice-construction scan, which already evaluates every
  /// clause's truth; only the final sample costs one extra scan.
  const RuleCountIndex* count_index = nullptr;
};

struct McSatResult {
  /// Estimated marginal probability P(atom = true) per atom.
  std::vector<double> marginals;
  int samples_used = 0;
  /// Per-rule mean / variance of the satisfied-grounding count over the
  /// kept samples (empty unless McSatOptions::count_index was set).
  std::vector<double> formula_count_mean;
  std::vector<double> formula_count_var;
};

/// MC-SAT (Poon & Domingos; Appendix A.5): slice sampling over clause
/// subsets. Each round picks a random subset M of the clauses satisfied
/// by the current state (clause with weight w joins M with probability
/// 1 - e^-|w|; hard clauses always join; a *violated* negative-weight
/// clause contributes the negations of its literals as unit constraints),
/// then SampleSAT draws a near-uniform satisfying assignment of M.
McSatResult RunMcSat(const Problem& problem, const McSatOptions& options,
                     uint64_t seed);

}  // namespace tuffy

#endif  // TUFFY_INFER_MCSAT_H_
