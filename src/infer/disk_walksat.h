#ifndef TUFFY_INFER_DISK_WALKSAT_H_
#define TUFFY_INFER_DISK_WALKSAT_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "infer/walksat.h"
#include "storage/buffer_pool.h"
#include "storage/heap_file.h"
#include "util/result.h"

namespace tuffy {

/// Options for the RDBMS-resident WalkSAT (Tuffy-mm, Appendix B.2).
struct DiskWalkSatOptions {
  uint64_t max_flips = 1000;
  double p_random = 0.5;
  double hard_weight = 1e6;
  double timeout_seconds = std::numeric_limits<double>::infinity();
  /// Buffer-pool frames available to the search.
  size_t buffer_frames = 64;
  /// Simulated per-page-I/O latency in microseconds. Appendix C.1 argues
  /// a disk-backed flip costs on the order of a random I/O; this knob
  /// models that without spinning disks.
  uint32_t io_latency_us = 20;
  uint64_t trace_every_flips = 0;
  bool init_random = true;
};

/// WalkSAT executed against an on-disk clause table, reproducing Tuffy's
/// in-RDBMS search baseline. Per Appendix B.2, the atom truth values are
/// cached as in-memory arrays while the per-clause data is read-only and
/// disk-resident: every flip requires scanning the clause table through
/// the buffer pool (to sample a violated clause, and again to evaluate
/// the greedy flip choice), so the flipping rate is bounded by page I/O
/// — the three-to-five orders-of-magnitude gap of Table 3.
class DiskWalkSat {
 public:
  /// Materializes the clause table into heap-file pages. Clauses longer
  /// than the record capacity are kept in a memory-side overflow list and
  /// evaluated without charging I/O — a conservative simplification that
  /// *understates* the cost of disk-resident search.
  static Result<std::unique_ptr<DiskWalkSat>> Create(
      const Problem& problem, const DiskWalkSatOptions& options);

  WalkSatResult Run(Rng* rng);

  /// Clause record capacity; longer clauses are not supported on disk.
  static constexpr int kMaxLitsPerClause = 24;

  const BufferPoolStats& buffer_stats() const { return pool_->stats(); }
  uint64_t pages_read() const { return disk_->num_reads(); }

 private:
  struct ClauseRecord {
    double weight;
    /// |effective weight| (hard_weight for hard clauses), precomputed at
    /// Create so the per-flip scans do a single load instead of a fabs
    /// plus a hard-ness branch per record.
    double abs_eff_weight;
    uint8_t hard;
    uint8_t num_lits;
    Lit lits[kMaxLitsPerClause];
  };

  DiskWalkSat(size_t num_atoms, const DiskWalkSatOptions& options);

  /// A clause picked by the violated-clause scan (copied out of its
  /// on-disk record or the overflow list).
  struct PickedClause {
    std::vector<Lit> lits;
    double weight = 0.0;
    bool hard = false;
  };

  /// Scans the clause table, computing the total cost and reservoir-
  /// sampling one violated clause. Returns false if none is violated.
  Result<bool> ScanForViolated(Rng* rng, double* total_cost,
                               PickedClause* out);

  /// Scans the clause table computing the flip delta for each candidate
  /// atom (one pass evaluates all candidates).
  Status ComputeDeltas(const std::vector<AtomId>& candidates,
                       std::vector<double>* deltas);

  double EffectiveWeight(const ClauseRecord& rec) const {
    return rec.hard ? options_.hard_weight : rec.weight;
  }
  bool ClauseTrue(const ClauseRecord& rec) const;
  bool IsViolated(const ClauseRecord& rec) const {
    bool is_true = ClauseTrue(rec);
    return (rec.hard || rec.weight >= 0) ? !is_true : is_true;
  }

  size_t num_atoms_;
  DiskWalkSatOptions options_;
  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<HeapFile> file_;
  /// Atom truth values, cached in memory per Appendix B.2.
  std::vector<uint8_t> truth_;
  /// Clauses too long for fixed-size records (see Create).
  std::vector<SearchClause> overflow_;
  /// Precomputed |effective weight| per overflow clause.
  std::vector<double> overflow_abs_w_;
};

}  // namespace tuffy

#endif  // TUFFY_INFER_DISK_WALKSAT_H_
