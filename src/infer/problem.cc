#include "infer/problem.h"

#include <cmath>
#include <unordered_map>

namespace tuffy {

void ClauseArena::Clear() {
  clause_offsets.clear();
  clause_offsets.push_back(0);
  lit_data.clear();
  weight.clear();
  abs_weight.clear();
  hard.clear();
  positive.clear();
  frozen.clear();
  num_atoms = 0;
}

void ClauseArena::AddClause(const Lit* lits, size_t n, double w,
                            bool is_hard) {
  if (clause_offsets.empty()) clause_offsets.push_back(0);
  const size_t start = lit_data.size();
  bool taut = false;
  for (size_t i = 0; i < n; ++i) {
    const Lit l = lits[i];
    bool dup = false;
    for (size_t j = start; j < lit_data.size(); ++j) {
      if (lit_data[j] == l) {
        dup = true;
        break;
      }
      if (lit_data[j] == -l) taut = true;
    }
    if (!dup) lit_data.push_back(l);
  }
  clause_offsets.push_back(static_cast<uint32_t>(lit_data.size()));
  weight.push_back(w);
  abs_weight.push_back(std::fabs(w));
  hard.push_back(is_hard ? 1 : 0);
  positive.push_back((is_hard || w >= 0) ? 1 : 0);
  frozen.push_back(taut ? 1 : 0);
}

size_t ClauseArena::EstimateBytes() const {
  return clause_offsets.capacity() * sizeof(uint32_t) +
         lit_data.capacity() * sizeof(Lit) +
         weight.capacity() * sizeof(double) +
         abs_weight.capacity() * sizeof(double) +
         hard.capacity() * sizeof(uint8_t) +
         positive.capacity() * sizeof(uint8_t) +
         frozen.capacity() * sizeof(uint8_t);
}

void ClauseArena::BuildFrom(size_t n_atoms,
                            const std::vector<SearchClause>& clauses) {
  Clear();
  for (const SearchClause& c : clauses) {
    AddClause(c.lits.data(), c.lits.size(), c.weight, c.hard);
  }
  Finish(n_atoms);
}

double Problem::EvalCost(const std::vector<uint8_t>& truth,
                         double hard_weight) const {
  double cost = 0.0;
  for (const SearchClause& c : clauses) {
    bool is_true = false;
    for (Lit l : c.lits) {
      bool atom_true = truth[LitAtom(l)] != 0;
      if (atom_true == LitPositive(l)) {
        is_true = true;
        break;
      }
    }
    if (c.hard) {
      if (!is_true) cost += hard_weight;
    } else if (c.weight > 0) {
      if (!is_true) cost += c.weight;
    } else {
      if (is_true) cost += -c.weight;
    }
  }
  return cost;
}

Problem MakeWholeProblem(size_t num_atoms,
                         const std::vector<GroundClause>& clauses) {
  Problem p;
  p.num_atoms = num_atoms;
  p.clauses.reserve(clauses.size());
  for (const GroundClause& c : clauses) {
    p.clauses.push_back(SearchClause{c.lits, c.weight, c.hard});
  }
  return p;
}

SubProblem BuildSubProblem(const std::vector<GroundClause>& all_clauses,
                           const std::vector<uint32_t>& clause_ids,
                           const std::vector<AtomId>& atom_ids) {
  SubProblem sub;
  sub.global_atom = atom_ids;
  sub.problem.num_atoms = atom_ids.size();
  std::unordered_map<AtomId, AtomId> local;
  local.reserve(atom_ids.size());
  for (size_t i = 0; i < atom_ids.size(); ++i) {
    local[atom_ids[i]] = static_cast<AtomId>(i);
  }
  sub.problem.clauses.reserve(clause_ids.size());
  for (uint32_t ci : clause_ids) {
    const GroundClause& c = all_clauses[ci];
    SearchClause sc;
    sc.weight = c.weight;
    sc.hard = c.hard;
    sc.lits.reserve(c.lits.size());
    for (Lit l : c.lits) {
      sc.lits.push_back(MakeLit(local.at(LitAtom(l)), LitPositive(l)));
    }
    sub.problem.clauses.push_back(std::move(sc));
  }
  return sub;
}

SubProblem BuildConditionedSubProblem(
    const std::vector<GroundClause>& all_clauses,
    const std::vector<uint32_t>& clause_ids,
    const std::vector<uint32_t>& cut_clause_ids,
    const std::vector<AtomId>& atom_ids,
    const std::vector<int32_t>& partition_of_atom, int32_t partition,
    const std::vector<uint8_t>& global_truth) {
  SubProblem sub = BuildSubProblem(all_clauses, clause_ids, atom_ids);
  std::unordered_map<AtomId, AtomId> local;
  local.reserve(atom_ids.size());
  for (size_t i = 0; i < atom_ids.size(); ++i) {
    local[atom_ids[i]] = static_cast<AtomId>(i);
  }
  for (uint32_t ci : cut_clause_ids) {
    const GroundClause& c = all_clauses[ci];
    // Skip cut clauses that do not touch this partition.
    bool touches = false;
    for (Lit l : c.lits) {
      if (partition_of_atom[LitAtom(l)] == partition) touches = true;
    }
    if (!touches) continue;
    SearchClause sc;
    sc.weight = c.weight;
    sc.hard = c.hard;
    bool satisfied_external = false;
    for (Lit l : c.lits) {
      AtomId g = LitAtom(l);
      if (partition_of_atom[g] == partition) {
        sc.lits.push_back(MakeLit(local.at(g), LitPositive(l)));
        continue;
      }
      bool atom_true = global_truth[g] != 0;
      if (atom_true == LitPositive(l)) {
        satisfied_external = true;
        break;
      }
      // External false literal: drop.
    }
    if (satisfied_external) {
      // For w > 0 / hard the clause is satisfied and disappears; for
      // w < 0 it is permanently violated inside this sweep, a constant
      // the local search cannot change, so it is also dropped.
      continue;
    }
    if (sc.lits.empty()) continue;  // constant for this sweep
    sub.problem.clauses.push_back(std::move(sc));
  }
  return sub;
}

}  // namespace tuffy
