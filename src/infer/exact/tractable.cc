#include "infer/exact/tractable.h"

#include <algorithm>
#include <unordered_map>

namespace tuffy {

namespace {

/// Union-find over atoms for the pair-graph acyclicity check.
struct UnionFind {
  std::vector<uint32_t> parent;
  explicit UnionFind(size_t n) : parent(n) {
    for (size_t i = 0; i < n; ++i) parent[i] = static_cast<uint32_t>(i);
  }
  uint32_t Find(uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  }
  /// Returns false when x and y are already connected (a cycle).
  bool Union(uint32_t x, uint32_t y) {
    uint32_t rx = Find(x), ry = Find(y);
    if (rx == ry) return false;
    parent[rx] = ry;
    return true;
  }
};

}  // namespace

const char* ExactFragmentName(ExactFragment fragment) {
  switch (fragment) {
    case ExactFragment::kNotTractable: return "not_tractable";
    case ExactFragment::kUnitOnly: return "unit_only";
    case ExactFragment::kForest: return "forest";
    case ExactFragment::kConditioned: return "conditioned";
  }
  return "not_tractable";
}

TractableStructure AnalyzeTractable(const Problem& problem) {
  TractableStructure st;
  const size_t n = problem.num_atoms;
  st.forced.assign(n, -1);
  st.unary.assign(2 * n, 0.0);
  st.touched.assign(n, 0);

  // Normalize: dedupe literals per clause, fold tautologies into the
  // constant (a negative-weight tautology is permanently violated; a
  // positive or hard one is permanently satisfied), mirroring
  // ClauseArena's frozen handling.
  std::vector<Lit> nlits;
  std::vector<uint32_t> noff{0};
  std::vector<double> nweight;
  std::vector<uint8_t> nhard;
  std::vector<Lit> tmp;
  for (const SearchClause& c : problem.clauses) {
    tmp.assign(c.lits.begin(), c.lits.end());
    std::sort(tmp.begin(), tmp.end(), [](Lit a, Lit b) {
      if (LitAtom(a) != LitAtom(b)) return LitAtom(a) < LitAtom(b);
      return a < b;
    });
    tmp.erase(std::unique(tmp.begin(), tmp.end()), tmp.end());
    bool taut = false;
    for (size_t i = 0; i + 1 < tmp.size(); ++i) {
      if (LitAtom(tmp[i]) == LitAtom(tmp[i + 1])) taut = true;
    }
    if (taut) {
      if (!c.hard && c.weight < 0) st.constant_cost += -c.weight;
      continue;
    }
    nlits.insert(nlits.end(), tmp.begin(), tmp.end());
    noff.push_back(static_cast<uint32_t>(nlits.size()));
    nweight.push_back(c.weight);
    nhard.push_back(c.hard ? 1 : 0);
  }
  const size_t nc = nweight.size();
  auto clause_lits = [&](size_t c) { return nlits.data() + noff[c]; };
  auto clause_len = [&](size_t c) { return noff[c + 1] - noff[c]; };

  // Hard-unit propagation: a hard clause whose other literals are all
  // forced false forces its remaining literal true. Counter-based, over
  // occurrence lists of hard clauses only (soft clauses never force).
  std::vector<std::vector<uint32_t>> occ(n);
  std::vector<uint32_t> remaining(nc, 0);
  std::vector<uint8_t> sat(nc, 0);
  for (size_t c = 0; c < nc; ++c) {
    if (!nhard[c]) continue;
    remaining[c] = clause_len(c);
    for (uint32_t i = 0; i < clause_len(c); ++i) {
      occ[LitAtom(clause_lits(c)[i])].push_back(static_cast<uint32_t>(c));
    }
  }
  std::vector<AtomId> queue;
  bool contradiction = false;
  auto force = [&](AtomId a, int8_t value) {
    if (st.forced[a] == value) return;
    if (st.forced[a] != -1) {
      contradiction = true;
      return;
    }
    st.forced[a] = value;
    queue.push_back(a);
  };
  for (size_t c = 0; c < nc && !contradiction; ++c) {
    if (!nhard[c]) continue;
    if (clause_len(c) == 0) contradiction = true;  // empty hard clause
    if (clause_len(c) == 1) {
      Lit l = clause_lits(c)[0];
      force(LitAtom(l), LitPositive(l) ? 1 : 0);
    }
  }
  while (!queue.empty() && !contradiction) {
    AtomId a = queue.back();
    queue.pop_back();
    for (uint32_t c : occ[a]) {
      if (sat[c] || contradiction) continue;
      Lit mine = 0;
      for (uint32_t i = 0; i < clause_len(c); ++i) {
        if (LitAtom(clause_lits(c)[i]) == a) mine = clause_lits(c)[i];
      }
      if ((st.forced[a] != 0) == LitPositive(mine)) {
        sat[c] = 1;
        continue;
      }
      if (--remaining[c] == 0) {
        contradiction = true;  // every hard world violates this clause
        break;
      }
      if (remaining[c] == 1) {
        for (uint32_t i = 0; i < clause_len(c); ++i) {
          Lit l = clause_lits(c)[i];
          if (st.forced[LitAtom(l)] == -1) {
            force(LitAtom(l), LitPositive(l) ? 1 : 0);
            break;
          }
        }
      }
    }
  }
  if (contradiction) return st;  // kNotTractable

  // Residual build: partially evaluate every clause against the forced
  // atoms; clauses keeping one unforced atom become unary charges, two
  // become pairwise cells, more is outside the fragment.
  UnionFind uf(n);
  std::unordered_map<uint64_t, uint32_t> edge_of_pair;
  bool has_binary = false;
  Lit res[2];
  for (size_t c = 0; c < nc; ++c) {
    bool sat_by_forced = false;
    uint32_t nres = 0;
    bool wide = false;
    for (uint32_t i = 0; i < clause_len(c); ++i) {
      Lit l = clause_lits(c)[i];
      int8_t f = st.forced[LitAtom(l)];
      if (f == -1) {
        if (nres < 2) res[nres] = l;
        if (++nres > 2) wide = true;
      } else if ((f != 0) == LitPositive(l)) {
        sat_by_forced = true;
      }
    }
    const bool positive = nhard[c] || nweight[c] >= 0;
    if (positive) {
      // Violated iff no literal is true.
      if (sat_by_forced) continue;
      if (nres == 0) {
        if (nhard[c]) {
          // Unsatisfiable hard clause propagation did not flag (cannot
          // happen by construction; belt-and-braces).
          st.fragment = ExactFragment::kNotTractable;
          return st;
        }
        st.constant_cost += nweight[c];  // permanently violated soft
        continue;
      }
    } else {
      // w < 0: violated iff some literal is true.
      if (sat_by_forced) {
        st.constant_cost += -nweight[c];
        continue;
      }
      if (nres == 0) continue;  // permanently false, never violated
    }
    if (wide) {
      st.fragment = ExactFragment::kNotTractable;
      return st;
    }
    if (nres == 1) {
      const AtomId a = LitAtom(res[0]);
      const int s = LitPositive(res[0]) ? 1 : 0;
      st.touched[a] = 1;
      // Positive: violated when the atom takes the literal-falsifying
      // value. Negative: violated when the literal is true.
      if (positive) {
        st.unary[2 * a + (1 - s)] += nweight[c];
      } else {
        st.unary[2 * a + s] += -nweight[c];
      }
      continue;
    }
    // nres == 2.
    AtomId u = LitAtom(res[0]), v = LitAtom(res[1]);
    int su = LitPositive(res[0]) ? 1 : 0, sv = LitPositive(res[1]) ? 1 : 0;
    if (u > v) {
      std::swap(u, v);
      std::swap(su, sv);
    }
    const uint64_t key = (static_cast<uint64_t>(u) << 32) | v;
    auto [it, inserted] = edge_of_pair.try_emplace(
        key, static_cast<uint32_t>(st.edges.size()));
    if (inserted) {
      if (!uf.Union(u, v)) {
        st.fragment = ExactFragment::kNotTractable;  // pair-graph cycle
        return st;
      }
      TractableStructure::Edge e;
      e.u = u;
      e.v = v;
      st.edges.push_back(e);
    }
    TractableStructure::Edge& e = st.edges[it->second];
    st.touched[u] = 1;
    st.touched[v] = 1;
    has_binary = true;
    if (nhard[c]) {
      e.hard[2 * (1 - su) + (1 - sv)] += 1;
    } else if (positive) {
      e.cost[2 * (1 - su) + (1 - sv)] += nweight[c];
    } else {
      // Violated in the three cells where some literal is true.
      const double w = -nweight[c];
      e.cost[2 * su + sv] += w;
      e.cost[2 * su + (1 - sv)] += w;
      e.cost[2 * (1 - su) + sv] += w;
    }
  }

  st.adj.assign(n, {});
  for (uint32_t ei = 0; ei < st.edges.size(); ++ei) {
    st.adj[st.edges[ei].u].push_back(ei);
    st.adj[st.edges[ei].v].push_back(ei);
  }

  bool conditioned = false;
  for (int8_t f : st.forced) {
    if (f != -1) conditioned = true;
  }
  st.fragment = conditioned ? ExactFragment::kConditioned
                : has_binary ? ExactFragment::kForest
                             : ExactFragment::kUnitOnly;
  return st;
}

}  // namespace tuffy
