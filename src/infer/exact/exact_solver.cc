#include "infer/exact/exact_solver.h"

#include <chrono>
#include <cmath>
#include <limits>

#include "obs/metrics.h"

namespace tuffy {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

double LogSumExp2(double a, double b) {
  const double m = a > b ? a : b;
  if (m == kNegInf) return kNegInf;
  return m + std::log(std::exp(a - m) + std::exp(b - m));
}

/// P(true) from log-beliefs (b0, b1), computed stably.
double MarginalFromLogBeliefs(double b0, double b1) {
  if (b1 == kNegInf) return 0.0;
  if (b0 == kNegInf) return 1.0;
  return 1.0 / (1.0 + std::exp(b0 - b1));
}

}  // namespace

ExactSolveResult TrySolveExact(const Problem& problem, double hard_weight,
                               bool want_marginals) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  static Counter* components_ctr = reg.GetCounter("search.exact.components");
  static Counter* atoms_ctr = reg.GetCounter("search.exact.atoms");
  static Counter* rejected_ctr = reg.GetCounter("search.exact.rejected");
  static Histogram* seconds_hist = reg.GetHistogram("search.exact.seconds");
  const auto t0 = std::chrono::steady_clock::now();
  auto stamp = [&] {
    seconds_hist->Record(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count());
  };

  ExactSolveResult out;
  TractableStructure st = AnalyzeTractable(problem);
  out.fragment = st.fragment;
  if (!st.tractable()) {
    rejected_ctr->Add();
    stamp();
    return out;
  }

  const size_t n = problem.num_atoms;
  const auto cell_of = [](const TractableStructure::Edge& e, uint32_t atom,
                          int aval, int oval) {
    // Tables are indexed [2*u_value + v_value]; orient by which end
    // `atom` is.
    return atom == e.u ? 2 * aval + oval : 2 * oval + aval;
  };

  // ---- MAP: iterative min-sum over each tree, then independent atoms.
  out.truth.assign(n, 0);
  for (size_t a = 0; a < n; ++a) {
    if (st.forced[a] != -1) out.truth[a] = static_cast<uint8_t>(st.forced[a]);
  }

  std::vector<uint8_t> visited(n, 0);
  std::vector<uint32_t> order;  // preorder, concatenated across trees
  order.reserve(n);
  std::vector<uint32_t> parent(n, UINT32_MAX);
  std::vector<uint32_t> parent_edge(n, UINT32_MAX);
  std::vector<uint32_t> roots;
  std::vector<uint32_t> stack;
  for (uint32_t r = 0; r < n; ++r) {
    if (visited[r] || st.adj[r].empty()) continue;
    roots.push_back(r);
    visited[r] = 1;
    stack.push_back(r);
    while (!stack.empty()) {
      const uint32_t v = stack.back();
      stack.pop_back();
      order.push_back(v);
      for (uint32_t ei : st.adj[v]) {
        const TractableStructure::Edge& e = st.edges[ei];
        const uint32_t w = e.u == v ? e.v : e.u;
        if (visited[w]) continue;
        visited[w] = 1;
        parent[w] = v;
        parent_edge[w] = ei;
        stack.push_back(w);
      }
    }
  }

  // dp[2v+val]: min residual cost of v's subtree given v = val. Hard
  // cells charge hard_weight each, mirroring EvalCost, so the argmin is
  // optimal even among hard-violating worlds.
  std::vector<double> dp(2 * n, 0.0);
  std::vector<uint8_t> best_child_val(2 * n, 0);  // [2*child + parent_val]
  for (uint32_t v : order) {
    dp[2 * v + 0] = st.unary[2 * v + 0];
    dp[2 * v + 1] = st.unary[2 * v + 1];
  }
  double map_internal = st.constant_cost;
  for (size_t i = order.size(); i-- > 0;) {
    const uint32_t v = order[i];
    const uint32_t p = parent[v];
    if (p == UINT32_MAX) {
      // Root: close out this tree (ties prefer false).
      const int rv = dp[2 * v + 1] < dp[2 * v + 0] ? 1 : 0;
      out.truth[v] = static_cast<uint8_t>(rv);
      map_internal += dp[2 * v + rv];
      continue;
    }
    const TractableStructure::Edge& e = st.edges[parent_edge[v]];
    for (int pv = 0; pv < 2; ++pv) {
      double best = kNegInf;
      int arg = 0;
      for (int cv = 0; cv < 2; ++cv) {
        const int cell = cell_of(e, p, pv, cv);
        const double c =
            dp[2 * v + cv] + e.cost[cell] + hard_weight * e.hard[cell];
        if (best == kNegInf || c < best) {
          best = c;
          arg = cv;
        }
      }
      dp[2 * p + pv] += best;
      best_child_val[2 * v + pv] = static_cast<uint8_t>(arg);
    }
  }
  for (const uint32_t v : order) {
    if (parent[v] != UINT32_MAX) {
      out.truth[v] = best_child_val[2 * v + out.truth[parent[v]]];
    }
  }
  for (uint32_t a = 0; a < n; ++a) {
    if (st.forced[a] != -1 || !st.adj[a].empty()) continue;
    // Independent atom: unary decides; untouched atoms keep the false
    // default (unary is zero there).
    const int av = st.unary[2 * a + 1] < st.unary[2 * a + 0] ? 1 : 0;
    out.truth[a] = static_cast<uint8_t>(av);
    map_internal += st.unary[2 * a + av];
  }
  out.map_cost = problem.EvalCost(out.truth, hard_weight);

  // Conditioning exactness guard: every world disagreeing with a
  // hard-unit-propagated atom violates at least one hard clause, so it
  // costs >= hard_weight. If the conditioned optimum beats that bound it
  // is globally optimal; otherwise nothing is provable — hand the
  // component back to the sampler.
  if (st.fragment == ExactFragment::kConditioned &&
      out.map_cost >= hard_weight) {
    rejected_ctr->Add();
    stamp();
    return ExactSolveResult{false, st.fragment};
  }

  // ---- logZ (+ marginals on request): normalized sum-product in log
  // space. Up pass computes per-tree logZ; the down pass uses
  // prefix/suffix message sums so no message is ever divided out (hard
  // cells make messages -inf, and -inf - -inf is NaN).
  bool z_zero = false;
  double log_z = -st.constant_cost;
  // bup[2v+val]: log( exp(-unary) * prod child messages ).
  std::vector<double> bup(2 * n, 0.0);
  // um[2v+pv]: normalized log message v -> parent(v).
  std::vector<double> um(2 * n, 0.0);
  for (uint32_t v : order) {
    bup[2 * v + 0] = -st.unary[2 * v + 0];
    bup[2 * v + 1] = -st.unary[2 * v + 1];
  }
  double lognorm = 0.0;
  for (size_t i = order.size(); i-- > 0;) {
    const uint32_t v = order[i];
    const uint32_t p = parent[v];
    if (p == UINT32_MAX) {
      const double lz_tree =
          LogSumExp2(bup[2 * v + 0], bup[2 * v + 1]) + lognorm;
      if (lz_tree == kNegInf) z_zero = true;
      log_z += lz_tree;
      lognorm = 0.0;  // trees are emitted contiguously in `order`
      continue;
    }
    const TractableStructure::Edge& e = st.edges[parent_edge[v]];
    for (int pv = 0; pv < 2; ++pv) {
      double m = kNegInf;
      for (int cv = 0; cv < 2; ++cv) {
        const int cell = cell_of(e, p, pv, cv);
        if (e.hard[cell]) continue;  // probability-zero cell
        m = LogSumExp2(m, bup[2 * v + cv] - e.cost[cell]);
      }
      um[2 * v + pv] = m;
    }
    const double mx = um[2 * v + 0] > um[2 * v + 1] ? um[2 * v + 0]
                                                    : um[2 * v + 1];
    if (mx == kNegInf) {
      z_zero = true;
    } else {
      um[2 * v + 0] -= mx;
      um[2 * v + 1] -= mx;
      lognorm += mx;
      bup[2 * p + 0] += um[2 * v + 0];
      bup[2 * p + 1] += um[2 * v + 1];
    }
  }
  for (uint32_t a = 0; a < n; ++a) {
    if (st.forced[a] != -1 || !st.adj[a].empty()) continue;
    log_z += LogSumExp2(-st.unary[2 * a + 0], -st.unary[2 * a + 1]);
  }
  out.log_z_valid = !z_zero;
  out.log_z = z_zero ? kNegInf : log_z;

  if (want_marginals) {
    if (z_zero) {
      // Matches brute force's "no world satisfies the hard clauses":
      // there is no distribution to report. Let the sampler cope.
      rejected_ctr->Add();
      stamp();
      return ExactSolveResult{false, st.fragment};
    }
    out.marginals.assign(n, 0.0);
    for (uint32_t a = 0; a < n; ++a) {
      if (st.forced[a] != -1) {
        out.marginals[a] = st.forced[a] ? 1.0 : 0.0;
      } else if (st.adj[a].empty()) {
        out.marginals[a] =
            MarginalFromLogBeliefs(-st.unary[2 * a + 0], -st.unary[2 * a + 1]);
      }
    }
    // Down pass (preorder): dn[2v+val] is the log message parent -> v.
    std::vector<double> dn(2 * n, 0.0);
    std::vector<std::vector<uint32_t>> children(n);
    for (uint32_t v : order) {
      if (parent[v] != UINT32_MAX) children[parent[v]].push_back(v);
    }
    std::vector<double> pre0, pre1;
    for (const uint32_t p : order) {
      out.marginals[p] =
          MarginalFromLogBeliefs(bup[2 * p + 0] + dn[2 * p + 0],
                                 bup[2 * p + 1] + dn[2 * p + 1]);
      const std::vector<uint32_t>& ch = children[p];
      if (ch.empty()) continue;
      // Prefix sums of child messages; suffix accumulated on the fly.
      pre0.assign(ch.size() + 1, 0.0);
      pre1.assign(ch.size() + 1, 0.0);
      for (size_t i = 0; i < ch.size(); ++i) {
        pre0[i + 1] = pre0[i] + um[2 * ch[i] + 0];
        pre1[i + 1] = pre1[i] + um[2 * ch[i] + 1];
      }
      double suf0 = 0.0, suf1 = 0.0;
      for (size_t i = ch.size(); i-- > 0;) {
        const uint32_t c = ch[i];
        const TractableStructure::Edge& e = st.edges[parent_edge[c]];
        // Belief at p excluding c's own message.
        const double ex0 =
            -st.unary[2 * p + 0] + dn[2 * p + 0] + pre0[i] + suf0;
        const double ex1 =
            -st.unary[2 * p + 1] + dn[2 * p + 1] + pre1[i] + suf1;
        for (int cv = 0; cv < 2; ++cv) {
          double m = kNegInf;
          const int cell0 = cell_of(e, p, 0, cv);
          const int cell1 = cell_of(e, p, 1, cv);
          if (!e.hard[cell0]) m = LogSumExp2(m, ex0 - e.cost[cell0]);
          if (!e.hard[cell1]) m = LogSumExp2(m, ex1 - e.cost[cell1]);
          dn[2 * c + cv] = m;
        }
        const double mx = dn[2 * c + 0] > dn[2 * c + 1] ? dn[2 * c + 0]
                                                        : dn[2 * c + 1];
        // mx > -inf whenever Z_tree > 0, which z_zero ruled in above.
        dn[2 * c + 0] -= mx;
        dn[2 * c + 1] -= mx;
        suf0 += um[2 * c + 0];
        suf1 += um[2 * c + 1];
      }
    }
  }

  out.solved = true;
  components_ctr->Add();
  atoms_ctr->Add(n);
  stamp();
  return out;
}

}  // namespace tuffy
