#ifndef TUFFY_INFER_EXACT_TRACTABLE_H_
#define TUFFY_INFER_EXACT_TRACTABLE_H_

#include <cstdint>
#include <vector>

#include "infer/problem.h"

namespace tuffy {

/// Which tractable fragment a component falls into (docs/
/// INFERENCE_EXACT.md). The fragments nest: kUnitOnly ⊂ kForest, and
/// kConditioned is "kForest after conditioning on hard-unit-propagated
/// atoms" — the TML-style case, where conditioning on the forced part of
/// the domain (alchemy-lite's subclass/fact conditioning) shrinks wider
/// clauses into the pairwise fragment.
enum class ExactFragment : uint8_t {
  kNotTractable = 0,
  /// Every residual clause is a unit clause (this covers clause-less and
  /// singleton components): atoms are independent.
  kUnitOnly,
  /// Unit + binary residual clauses whose atom-pair graph is a forest
  /// (chains and trees; parallel clauses over one pair merge into a
  /// single pairwise table and do not count as a cycle).
  kForest,
  /// kUnitOnly/kForest reached only after hard-unit propagation fixed
  /// one or more atoms.
  kConditioned,
};

const char* ExactFragmentName(ExactFragment fragment);

/// The residual pairwise structure of a tractable problem, produced by
/// AnalyzeTractable and consumed by the exact solver. All costs are the
/// |w| violation charges of Section 2.2, partially evaluated against the
/// forced atoms; hard violations are kept as cell flags (the solver
/// charges hard_weight for MAP and probability zero for marginals).
struct TractableStructure {
  ExactFragment fragment = ExactFragment::kNotTractable;
  bool tractable() const { return fragment != ExactFragment::kNotTractable; }

  /// Per atom: -1 free, 0/1 pinned by hard-unit propagation.
  std::vector<int8_t> forced;
  /// Soft cost every world consistent with `forced` pays (clauses fully
  /// resolved by conditioning, plus negative-weight tautologies).
  double constant_cost = 0.0;
  /// Per-atom soft cost of assigning the atom false/true (residual unit
  /// clauses; residual hard clauses are never unit — propagation ate
  /// them).
  std::vector<double> unary;  // 2 * num_atoms, [2*a + value]
  /// One merged pairwise table per atom pair with binary residual
  /// clauses. cost/hard are indexed [2*u_value + v_value].
  struct Edge {
    uint32_t u = 0, v = 0;  // u < v, both unforced
    double cost[4] = {0, 0, 0, 0};
    // Number of hard clauses violated in this cell — a count, not a
    // flag, so MAP's hard_weight charge matches EvalCost exactly even
    // when several hard clauses share the cell.
    uint8_t hard[4] = {0, 0, 0, 0};
  };
  std::vector<Edge> edges;
  /// Per atom: appears in some residual clause (unary or pairwise).
  /// Unforced atoms outside every residual clause are free: MAP-default
  /// false, marginal exactly 1/2, and a factor of 2 in Z.
  std::vector<uint8_t> touched;
  /// Adjacency lists into `edges`, for the tree passes.
  std::vector<std::vector<uint32_t>> adj;
};

/// Detects whether `problem` lies in the tractable fragment and, if so,
/// builds the residual structure the exact solver runs on. Linear in the
/// problem size for bounded clause width. Not tractable when: hard-unit
/// propagation derives a contradiction, a residual clause keeps more
/// than two unforced atoms, or the residual pair graph has a cycle
/// through distinct atom pairs.
TractableStructure AnalyzeTractable(const Problem& problem);

}  // namespace tuffy

#endif  // TUFFY_INFER_EXACT_TRACTABLE_H_
