#ifndef TUFFY_INFER_EXACT_EXACT_SOLVER_H_
#define TUFFY_INFER_EXACT_EXACT_SOLVER_H_

#include <cstdint>
#include <vector>

#include "infer/exact/tractable.h"
#include "infer/problem.h"

namespace tuffy {

/// Output of TrySolveExact. When `solved`, `truth`/`map_cost` are the
/// globally optimal MAP assignment and its EvalCost; `log_z` and
/// `marginals` (the latter only when requested) are exact under the MLN
/// distribution Pr[I] ∝ exp(-soft cost), hard-violating worlds excluded
/// — the same convention as infer/brute_force.
struct ExactSolveResult {
  bool solved = false;
  ExactFragment fragment = ExactFragment::kNotTractable;

  std::vector<uint8_t> truth;
  double map_cost = 0.0;

  /// ln Z. Only meaningful when `log_z_valid`; false means every world
  /// consistent with the hard clauses was excluded (Z = 0), in which
  /// case marginal requests are rejected (solved = false).
  double log_z = 0.0;
  bool log_z_valid = false;

  /// Per-atom P(atom = true); empty unless want_marginals.
  std::vector<double> marginals;
};

/// Attempts an exact linear-time solve of `problem`. Returns
/// solved=false (with `fragment` saying why-not when detection failed)
/// when the component is outside the tractable fragment, when a
/// conditioned MAP optimum still violates a hard clause (conditioning is
/// then no longer provably optimal), or when marginals are requested but
/// no world satisfies the hard clauses. Deterministic: identical inputs
/// produce bit-identical outputs regardless of thread count. Records
/// search.exact.* metrics.
ExactSolveResult TrySolveExact(const Problem& problem, double hard_weight,
                               bool want_marginals);

}  // namespace tuffy

#endif  // TUFFY_INFER_EXACT_EXACT_SOLVER_H_
