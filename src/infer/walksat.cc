#include "infer/walksat.h"

#include <cmath>

#include "util/timer.h"

namespace tuffy {

WalkSatState::WalkSatState(const Problem* problem, double hard_weight)
    : problem_(problem), hard_weight_(hard_weight) {
  truth_.assign(problem_->num_atoms, 0);
  occurrences_.resize(problem_->num_atoms);
  for (uint32_t ci = 0; ci < problem_->clauses.size(); ++ci) {
    for (Lit l : problem_->clauses[ci].lits) {
      occurrences_[LitAtom(l)].emplace_back(ci, l);
    }
  }
  Rebuild();
}

void WalkSatState::SetAssignment(const std::vector<uint8_t>& truth) {
  truth_ = truth;
  Rebuild();
}

void WalkSatState::RandomAssignment(Rng* rng) {
  for (size_t i = 0; i < truth_.size(); ++i) {
    truth_[i] = rng->Bernoulli(0.5) ? 1 : 0;
  }
  Rebuild();
}

void WalkSatState::AllFalseAssignment() {
  std::fill(truth_.begin(), truth_.end(), 0);
  Rebuild();
}

void WalkSatState::Rebuild() {
  num_true_.assign(problem_->clauses.size(), 0);
  violated_.clear();
  violated_pos_.assign(problem_->clauses.size(), -1);
  cost_ = 0.0;
  for (uint32_t ci = 0; ci < problem_->clauses.size(); ++ci) {
    const SearchClause& c = problem_->clauses[ci];
    int n = 0;
    for (Lit l : c.lits) {
      if ((truth_[LitAtom(l)] != 0) == LitPositive(l)) ++n;
    }
    num_true_[ci] = n;
    if (IsViolated(ci)) {
      violated_pos_[ci] = static_cast<int32_t>(violated_.size());
      violated_.push_back(ci);
      cost_ += std::fabs(EffectiveWeight(c));
    }
  }
}

void WalkSatState::SetViolated(uint32_t clause, bool violated) {
  bool currently = violated_pos_[clause] >= 0;
  if (currently == violated) return;
  const SearchClause& c = problem_->clauses[clause];
  if (violated) {
    violated_pos_[clause] = static_cast<int32_t>(violated_.size());
    violated_.push_back(clause);
    cost_ += std::fabs(EffectiveWeight(c));
  } else {
    int32_t pos = violated_pos_[clause];
    uint32_t last = violated_.back();
    violated_[pos] = last;
    violated_pos_[last] = pos;
    violated_.pop_back();
    violated_pos_[clause] = -1;
    cost_ -= std::fabs(EffectiveWeight(c));
  }
}

double WalkSatState::FlipDelta(AtomId atom) const {
  double delta = 0.0;
  bool value = truth_[atom] != 0;
  for (const auto& [ci, lit] : occurrences_[atom]) {
    const SearchClause& c = problem_->clauses[ci];
    bool lit_true = (value == LitPositive(lit));
    int n_before = num_true_[ci];
    int n_after = lit_true ? n_before - 1 : n_before + 1;
    bool pos_clause = c.hard || c.weight >= 0;
    bool viol_before = pos_clause ? (n_before == 0) : (n_before > 0);
    bool viol_after = pos_clause ? (n_after == 0) : (n_after > 0);
    if (viol_before != viol_after) {
      double w = std::fabs(EffectiveWeight(c));
      delta += viol_after ? w : -w;
    }
  }
  return delta;
}

void WalkSatState::Flip(AtomId atom) {
  bool value = truth_[atom] != 0;
  truth_[atom] = value ? 0 : 1;
  for (const auto& [ci, lit] : occurrences_[atom]) {
    bool lit_true = (value == LitPositive(lit));
    num_true_[ci] += lit_true ? -1 : 1;
    SetViolated(ci, IsViolated(ci));
  }
}

WalkSatResult WalkSat::Run() {
  Timer timer;
  WalkSatResult result;
  WalkSatState state(problem_, options_.hard_weight);

  for (int attempt = 0; attempt < options_.max_tries; ++attempt) {
    if (options_.initial != nullptr) {
      state.SetAssignment(*options_.initial);
    } else if (options_.init_random) {
      state.RandomAssignment(rng_);
    } else {
      state.AllFalseAssignment();
    }
    if (state.cost() < result.best_cost) {
      result.best_cost = state.cost();
      result.best_truth = state.truth();
    }

    for (uint64_t flip = 0; flip < options_.max_flips; ++flip) {
      if (!state.HasViolated()) break;  // optimal (cost 0)
      if ((flip & 1023) == 0 &&
          timer.ElapsedSeconds() > options_.timeout_seconds) {
        break;
      }
      uint32_t ci = state.SampleViolated(rng_);
      const SearchClause& clause = problem_->clauses[ci];
      AtomId chosen;
      if (rng_->NextDouble() <= options_.p_random) {
        Lit l = clause.lits[rng_->Uniform(clause.lits.size())];
        chosen = LitAtom(l);
      } else {
        // Flip the atom whose flip decreases cost the most.
        double best_delta = std::numeric_limits<double>::infinity();
        chosen = LitAtom(clause.lits[0]);
        for (Lit l : clause.lits) {
          AtomId a = LitAtom(l);
          double d = state.FlipDelta(a);
          if (d < best_delta) {
            best_delta = d;
            chosen = a;
          }
        }
      }
      state.Flip(chosen);
      ++result.flips;
      if (state.cost() < result.best_cost) {
        result.best_cost = state.cost();
        result.best_truth = state.truth();
      }
      if (options_.trace_every_flips > 0 &&
          result.flips % options_.trace_every_flips == 0) {
        result.trace.push_back(
            TracePoint{timer.ElapsedSeconds(), result.flips, result.best_cost});
      }
    }
    if (result.best_cost == 0.0) break;
    if (timer.ElapsedSeconds() > options_.timeout_seconds) break;
  }
  result.seconds = timer.ElapsedSeconds();
  if (result.best_truth.empty()) {
    result.best_truth.assign(problem_->num_atoms, 0);
    result.best_cost = state.cost();
  }
  return result;
}

IncrementalWalkSat::IncrementalWalkSat(const Problem* problem,
                                       WalkSatOptions options, Rng* rng)
    : problem_(problem),
      options_(options),
      rng_(rng),
      state_(problem, options.hard_weight) {
  if (options_.initial != nullptr) {
    state_.SetAssignment(*options_.initial);
  } else if (options_.init_random) {
    state_.RandomAssignment(rng_);
  } else {
    state_.AllFalseAssignment();
  }
  best_cost_ = state_.cost();
  best_truth_ = state_.truth();
}

void IncrementalWalkSat::SetAssignment(const std::vector<uint8_t>& truth) {
  state_.SetAssignment(truth);
  if (state_.cost() < best_cost_) {
    best_cost_ = state_.cost();
    best_truth_ = state_.truth();
  }
}

uint64_t IncrementalWalkSat::RunFlips(uint64_t n) {
  uint64_t done = 0;
  while (done < n) {
    if (!state_.HasViolated()) break;
    uint32_t ci = state_.SampleViolated(rng_);
    const SearchClause& clause = problem_->clauses[ci];
    AtomId chosen;
    if (rng_->NextDouble() <= options_.p_random) {
      chosen = LitAtom(clause.lits[rng_->Uniform(clause.lits.size())]);
    } else {
      double best_delta = std::numeric_limits<double>::infinity();
      chosen = LitAtom(clause.lits[0]);
      for (Lit l : clause.lits) {
        AtomId a = LitAtom(l);
        double d = state_.FlipDelta(a);
        if (d < best_delta) {
          best_delta = d;
          chosen = a;
        }
      }
    }
    state_.Flip(chosen);
    ++done;
    if (state_.cost() < best_cost_) {
      best_cost_ = state_.cost();
      best_truth_ = state_.truth();
    }
  }
  flips_ += done;
  return done;
}

}  // namespace tuffy
