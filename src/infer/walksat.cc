#include "infer/walksat.h"

#include <cmath>

#include "util/timer.h"

namespace tuffy {

WalkSatState::WalkSatState(const Problem* problem, double hard_weight) {
  Attach(&problem->arena(), hard_weight);
  Rebuild();
}

WalkSatState::WalkSatState(const ClauseArena* arena, double hard_weight) {
  Attach(arena, hard_weight);
  Rebuild();
}

double WalkSatState::SignedCost(uint32_t clause) const {
  const double w =
      arena_->hard[clause] ? hard_weight_ : arena_->abs_weight[clause];
  return arena_->positive[clause] ? w : -w;
}

void WalkSatState::BuildOccurrences() {
  const ClauseArena& a = *arena_;
  const size_t n_atoms = a.num_atoms;
  const size_t n_clauses = a.num_clauses();
  // Counting sort of occurrence entries by atom. Frozen clauses have a
  // constant truth value and take no part in flip bookkeeping.
  occ_offsets_.assign(n_atoms + 1, 0);
  size_t total = 0;
  for (uint32_t c = 0; c < n_clauses; ++c) {
    if (a.frozen[c]) continue;
    const Lit* lits = a.clause_lits(c);
    const uint32_t len = a.clause_size(c);
    for (uint32_t i = 0; i < len; ++i) ++occ_offsets_[LitAtom(lits[i]) + 1];
    total += len;
  }
  for (size_t at = 1; at <= n_atoms; ++at) {
    occ_offsets_[at] += occ_offsets_[at - 1];
  }
  occ_entries_.resize(total);
  for (uint32_t c = 0; c < n_clauses; ++c) {
    if (a.frozen[c]) continue;
    const Lit* lits = a.clause_lits(c);
    const uint32_t len = a.clause_size(c);
    const double sw = SignedCost(c);
    for (uint32_t i = 0; i < len; ++i) {
      const Lit l = lits[i];
      OccEntry e;
      e.clause_and_sign = (c << 1) | (LitPositive(l) ? 1u : 0u);
      e.signed_cost = sw;
      if (len == 1) {
        e.other = kUnit;
      } else if (len == 2 && LitAtom(lits[0]) != LitAtom(lits[1])) {
        const Lit ol = lits[1 - i];
        e.other = (LitAtom(ol) << 1) | (LitPositive(ol) ? 1u : 0u);
      } else {
        e.other = kGeneral;
      }
      occ_entries_[occ_offsets_[LitAtom(l)]++] = e;
    }
  }
  // The fill pass advanced each offset to the next atom's start; shift
  // back so occ_offsets_[at] is again the start of atom at's span.
  for (size_t at = n_atoms; at > 0; --at) {
    occ_offsets_[at] = occ_offsets_[at - 1];
  }
  occ_offsets_[0] = 0;
}

void WalkSatState::Attach(const ClauseArena* arena, double hard_weight) {
  arena_ = arena;
  hard_weight_ = hard_weight;
  // A statistics index is keyed by clause id, which just changed meaning.
  stats_index_ = nullptr;
  cstate_.resize(arena_->num_clauses());
  BuildOccurrences();
  truth_.assign(arena_->num_atoms, 0);
  // No Rebuild here: every assignment setter rebuilds, so doing it now
  // would double the per-attach cost (MC-SAT attaches once per sample
  // and immediately draws a random assignment).
}

void WalkSatState::SetAssignment(const std::vector<uint8_t>& truth) {
  truth_ = truth;
  Rebuild();
}

void WalkSatState::RandomAssignment(Rng* rng) {
  for (size_t i = 0; i < truth_.size(); ++i) {
    truth_[i] = rng->Bernoulli(0.5) ? 1 : 0;
  }
  Rebuild();
}

void WalkSatState::AllFalseAssignment() {
  std::fill(truth_.begin(), truth_.end(), 0);
  Rebuild();
}

void WalkSatState::Rebuild() {
  const ClauseArena& a = *arena_;
  const size_t n_clauses = a.num_clauses();
  flip_delta_.assign(a.num_atoms, 0.0);
  violated_.clear();
  violated_pos_.assign(n_clauses, -1);
  cost_ = 0.0;
  for (uint32_t c = 0; c < n_clauses; ++c) {
    if (a.frozen[c]) {
      // Constant clause: a negative-convention tautology is permanently
      // violated, a positive-convention one never is. No flips change it,
      // so it contributes nothing to any cached delta.
      if (!a.positive[c]) {
        violated_pos_[c] = static_cast<int32_t>(violated_.size());
        violated_.push_back(c);
        cost_ += std::fabs(SignedCost(c));
      }
      continue;
    }
    const Lit* lits = a.clause_lits(c);
    const uint32_t len = a.clause_size(c);
    int n = 0;
    uint32_t sum = 0;
    for (uint32_t i = 0; i < len; ++i) {
      AtomId atom = LitAtom(lits[i]);
      if ((truth_[atom] != 0) == LitPositive(lits[i])) {
        ++n;
        sum += atom;
      }
    }
    ClauseState& cs = cstate_[c];
    cs.num_true = n;
    cs.critical_sum = sum;
    // sw = +w for positive-convention clauses, -w for negative ones; all
    // make/break arithmetic below is symmetric under this sign.
    const double sw = SignedCost(c);
    const double w = std::fabs(sw);
    if (n == 0) {
      // Flipping any atom in the clause makes its literal true: a
      // positive clause stops being violated (-w), a negative one starts
      // being violated (+w).
      for (uint32_t i = 0; i < len; ++i) flip_delta_[LitAtom(lits[i])] -= sw;
    } else if (n == 1) {
      // Only the critical atom changes the clause's status.
      flip_delta_[sum] += sw;
    }
    const bool violated = std::signbit(sw) ? (n > 0) : (n == 0);
    if (violated) {
      violated_pos_[c] = static_cast<int32_t>(violated_.size());
      violated_.push_back(c);
      cost_ += w;
    }
  }
  if (stats_index_ != nullptr) RecomputeFormulaCounts();
}

void WalkSatState::EnableFormulaStats(const RuleCountIndex* index) {
  stats_index_ = index;
  RecomputeFormulaCounts();
}

void WalkSatState::RecomputeFormulaCounts() {
  const ClauseArena& a = *arena_;
  const size_t n_clauses = a.num_clauses();
  formula_true_.assign(stats_index_->num_rules, 0);
  for (uint32_t c = 0; c < n_clauses; ++c) {
    bool is_true = a.frozen[c] != 0;  // a tautology is always true
    if (!is_true) {
      const Lit* lits = a.clause_lits(c);
      const uint32_t len = a.clause_size(c);
      for (uint32_t i = 0; i < len; ++i) {
        if ((truth_[LitAtom(lits[i])] != 0) == LitPositive(lits[i])) {
          is_true = true;
          break;
        }
      }
    }
    if (is_true) stats_index_->AccumulateClause(c, int64_t{1}, &formula_true_);
  }
}

size_t WalkSatState::EstimateBytes() const {
  return truth_.capacity() * sizeof(uint8_t) +
         occ_offsets_.capacity() * sizeof(uint32_t) +
         occ_entries_.capacity() * sizeof(OccEntry) +
         cstate_.capacity() * sizeof(ClauseState) +
         flip_delta_.capacity() * sizeof(double) +
         violated_.capacity() * sizeof(uint32_t) +
         violated_pos_.capacity() * sizeof(int32_t) +
         formula_true_.capacity() * sizeof(int64_t);
}

void WalkSatState::SetViolated(uint32_t clause, bool violated, double cost) {
  bool currently = violated_pos_[clause] >= 0;
  if (currently == violated) return;
  if (stats_index_ != nullptr) {
    // Violation toggles exactly when truth toggles; the convention bit
    // turns the new violation status back into the new truth value.
    const bool now_true = (arena_->positive[clause] != 0) != violated;
    stats_index_->AccumulateClause(clause, now_true ? int64_t{1} : int64_t{-1},
                                   &formula_true_);
  }
  if (violated) {
    violated_pos_[clause] = static_cast<int32_t>(violated_.size());
    violated_.push_back(clause);
    cost_ += cost;
  } else {
    int32_t pos = violated_pos_[clause];
    uint32_t last = violated_.back();
    violated_[pos] = last;
    violated_pos_[last] = pos;
    violated_.pop_back();
    violated_pos_[clause] = -1;
    cost_ -= cost;
  }
}

void WalkSatState::Flip(AtomId atom) {
  const ClauseArena& a = *arena_;
  const bool was_true = truth_[atom] != 0;
  truth_[atom] = was_true ? 0 : 1;
  const OccEntry* occ = occ_entries_.data();
  const uint32_t end = occ_offsets_[atom + 1];
  for (uint32_t o = occ_offsets_[atom]; o < end; ++o) {
    const OccEntry& e = occ[o];
    const uint32_t c = e.clause_and_sign >> 1;
    const bool lit_was_true = (was_true == ((e.clause_and_sign & 1u) != 0));
    const double sw = e.signed_cost;
    if (e.other < kGeneral) {
      // Unit/binary fast path: the clause's true-literal count is a pure
      // function of the (L1-resident) truth array, so no per-clause state
      // is read or written — the occurrence walk stays sequential.
      const AtomId other_atom = e.other >> 1;
      const bool other_true =
          (truth_[other_atom] != 0) == ((e.other & 1u) != 0);
      if (lit_was_true) {
        if (other_true) {
          // 2 -> 1: the other atom becomes critical.
          flip_delta_[other_atom] += sw;
        } else {
          // 1 -> 0: both flips now toggle the clause; the flipped atom
          // additionally loses its critical bonus.
          flip_delta_[atom] -= 2.0 * sw;
          flip_delta_[other_atom] -= sw;
          SetViolated(c, !std::signbit(sw), std::fabs(sw));
        }
      } else {
        if (other_true) {
          // 1 -> 2: the other atom is no longer critical.
          flip_delta_[other_atom] -= sw;
        } else {
          // 0 -> 1: the clause toggled; the flipped atom became critical.
          flip_delta_[atom] += 2.0 * sw;
          flip_delta_[other_atom] += sw;
          SetViolated(c, std::signbit(sw), std::fabs(sw));
        }
      }
      continue;
    }
    if (e.other == kUnit) {
      // Unit clause: every flip of its atom toggles it.
      if (lit_was_true) {
        flip_delta_[atom] -= 2.0 * sw;
        SetViolated(c, !std::signbit(sw), std::fabs(sw));
      } else {
        flip_delta_[atom] += 2.0 * sw;
        SetViolated(c, std::signbit(sw), std::fabs(sw));
      }
      continue;
    }
    // General path (length >= 3 or degenerate): exact counter updates.
    ClauseState& cs = cstate_[c];
    const int n = cs.num_true;
    if (lit_was_true) {
      cs.critical_sum -= atom;
      cs.num_true = n - 1;
      if (n == 1) {
        // 1 -> 0: every atom's flip now toggles the clause; the flipped
        // atom additionally loses its critical bonus.
        const Lit* lits = a.clause_lits(c);
        const uint32_t len = a.clause_size(c);
        for (uint32_t i = 0; i < len; ++i) flip_delta_[LitAtom(lits[i])] -= sw;
        flip_delta_[atom] -= sw;
        // A positive clause just became violated; a negative one became
        // satisfied.
        SetViolated(c, !std::signbit(sw), std::fabs(sw));
      } else if (n == 2) {
        // 2 -> 1: the surviving true literal's atom becomes critical.
        flip_delta_[cs.critical_sum] += sw;
      }
    } else {
      cs.critical_sum += atom;
      cs.num_true = n + 1;
      if (n == 0) {
        // 0 -> 1: the clause toggled; the flipped atom becomes critical.
        const Lit* lits = a.clause_lits(c);
        const uint32_t len = a.clause_size(c);
        for (uint32_t i = 0; i < len; ++i) flip_delta_[LitAtom(lits[i])] += sw;
        flip_delta_[atom] += sw;
        SetViolated(c, std::signbit(sw), std::fabs(sw));
      } else if (n == 1) {
        // 1 -> 2: the previously-critical atom is no longer critical.
        flip_delta_[cs.critical_sum - atom] -= sw;
      }
    }
  }
}

WalkSatResult WalkSat::Run() {
  Timer timer;
  WalkSatResult result;
  WalkSatState state(problem_, options_.hard_weight);
  result.state_bytes =
      state.EstimateBytes() + problem_->arena().EstimateBytes();
  BestTruthTracker best;
  bool best_init = false;

  for (int attempt = 0; attempt < options_.max_tries; ++attempt) {
    if (options_.initial != nullptr) {
      state.SetAssignment(*options_.initial);
    } else if (options_.init_random) {
      state.RandomAssignment(rng_);
    } else {
      state.AllFalseAssignment();
    }
    if (!best_init) {
      best.Reset(state.truth(), state.cost());
      best_init = true;
    } else {
      best.RebaseTo(state.truth());
      if (state.cost() < best.best_cost()) best.OnImproved(state.cost());
    }

    for (uint64_t flip = 0; flip < options_.max_flips; ++flip) {
      if (!state.HasViolated()) break;  // optimal (cost 0)
      if ((flip & 1023) == 0 &&
          timer.ElapsedSeconds() > options_.timeout_seconds) {
        break;
      }
      AtomId chosen = ChooseWalkSatMove(state, options_.p_random, rng_);
      state.Flip(chosen);
      best.OnFlip(chosen);
      ++result.flips;
      if (state.cost() < best.best_cost()) {
        best.OnImproved(state.cost());
      } else {
        best.MaybeRebase(state.truth());
      }
      if (options_.trace_every_flips > 0 &&
          result.flips % options_.trace_every_flips == 0) {
        result.trace.push_back(
            TracePoint{timer.ElapsedSeconds(), result.flips, best.best_cost()});
      }
    }
    if (best.best_cost() == 0.0) break;
    if (timer.ElapsedSeconds() > options_.timeout_seconds) break;
  }
  result.seconds = timer.ElapsedSeconds();
  if (best_init) {
    result.best_cost = best.best_cost();
    result.best_truth = best.best_truth();
  } else {
    result.best_truth.assign(problem_->num_atoms, 0);
    result.best_cost = state.cost();
  }
  return result;
}

IncrementalWalkSat::IncrementalWalkSat(const Problem* problem,
                                       WalkSatOptions options, Rng* rng)
    : problem_(problem),
      options_(options),
      rng_(rng),
      state_(problem, options.hard_weight) {
  if (options_.initial != nullptr) {
    state_.SetAssignment(*options_.initial);
  } else if (options_.init_random) {
    state_.RandomAssignment(rng_);
  } else {
    state_.AllFalseAssignment();
  }
  best_.Reset(state_.truth(), state_.cost());
}

void IncrementalWalkSat::SetAssignment(const std::vector<uint8_t>& truth) {
  state_.SetAssignment(truth);
  best_.RebaseTo(state_.truth());
  if (state_.cost() < best_.best_cost()) best_.OnImproved(state_.cost());
}

uint64_t IncrementalWalkSat::RunFlips(uint64_t n) {
  uint64_t done = 0;
  while (done < n) {
    if (!state_.HasViolated()) break;
    AtomId chosen = ChooseWalkSatMove(state_, options_.p_random, rng_);
    state_.Flip(chosen);
    best_.OnFlip(chosen);
    ++done;
    if (state_.cost() < best_.best_cost()) {
      best_.OnImproved(state_.cost());
    } else {
      best_.MaybeRebase(state_.truth());
    }
  }
  flips_ += done;
  return done;
}

}  // namespace tuffy
