#include "infer/brute_force.h"

#include <cmath>

#include "util/string_util.h"

namespace tuffy {

Result<ExactMapResult> ExactMap(const Problem& problem, double hard_weight,
                                size_t max_atoms) {
  if (problem.num_atoms > max_atoms) {
    return Status::InvalidArgument(
        StrFormat("%zu atoms exceeds brute-force limit %zu",
                  problem.num_atoms, max_atoms));
  }
  ExactMapResult best;
  best.cost = std::numeric_limits<double>::infinity();
  std::vector<uint8_t> truth(problem.num_atoms, 0);
  uint64_t worlds = 1ull << problem.num_atoms;
  for (uint64_t w = 0; w < worlds; ++w) {
    for (size_t i = 0; i < problem.num_atoms; ++i) {
      truth[i] = (w >> i) & 1 ? 1 : 0;
    }
    double cost = problem.EvalCost(truth, hard_weight);
    if (cost < best.cost) {
      best.cost = cost;
      best.truth = truth;
    }
  }
  return best;
}

Result<std::vector<double>> ExactMarginals(const Problem& problem,
                                           size_t max_atoms) {
  if (problem.num_atoms > max_atoms) {
    return Status::InvalidArgument(
        StrFormat("%zu atoms exceeds brute-force limit %zu",
                  problem.num_atoms, max_atoms));
  }
  std::vector<double> numer(problem.num_atoms, 0.0);
  double z = 0.0;
  std::vector<uint8_t> truth(problem.num_atoms, 0);
  uint64_t worlds = 1ull << problem.num_atoms;
  for (uint64_t w = 0; w < worlds; ++w) {
    bool hard_violated = false;
    for (size_t i = 0; i < problem.num_atoms; ++i) {
      truth[i] = (w >> i) & 1 ? 1 : 0;
    }
    double cost = 0.0;
    for (const SearchClause& c : problem.clauses) {
      bool is_true = false;
      for (Lit l : c.lits) {
        if ((truth[LitAtom(l)] != 0) == LitPositive(l)) {
          is_true = true;
          break;
        }
      }
      if (c.hard) {
        if (!is_true) hard_violated = true;
      } else if (c.weight > 0 && !is_true) {
        cost += c.weight;
      } else if (c.weight < 0 && is_true) {
        cost += -c.weight;
      }
    }
    if (hard_violated) continue;
    double p = std::exp(-cost);
    z += p;
    for (size_t i = 0; i < problem.num_atoms; ++i) {
      if (truth[i]) numer[i] += p;
    }
  }
  if (z <= 0) return Status::Internal("no world satisfies the hard clauses");
  for (double& v : numer) v /= z;
  return numer;
}

Result<double> ExactLogZ(const Problem& problem, size_t max_atoms) {
  if (problem.num_atoms > max_atoms) {
    return Status::InvalidArgument(
        StrFormat("%zu atoms exceeds brute-force limit %zu",
                  problem.num_atoms, max_atoms));
  }
  double z = 0.0;
  std::vector<uint8_t> truth(problem.num_atoms, 0);
  uint64_t worlds = 1ull << problem.num_atoms;
  for (uint64_t w = 0; w < worlds; ++w) {
    bool hard_violated = false;
    for (size_t i = 0; i < problem.num_atoms; ++i) {
      truth[i] = (w >> i) & 1 ? 1 : 0;
    }
    double cost = 0.0;
    for (const SearchClause& c : problem.clauses) {
      bool is_true = false;
      for (Lit l : c.lits) {
        if ((truth[LitAtom(l)] != 0) == LitPositive(l)) {
          is_true = true;
          break;
        }
      }
      if (c.hard) {
        if (!is_true) hard_violated = true;
      } else if (c.weight > 0 && !is_true) {
        cost += c.weight;
      } else if (c.weight < 0 && is_true) {
        cost += -c.weight;
      }
    }
    if (hard_violated) continue;
    z += std::exp(-cost);
  }
  if (z <= 0) return Status::Internal("no world satisfies the hard clauses");
  return std::log(z);
}

}  // namespace tuffy
