#ifndef TUFFY_INFER_WALKSAT_H_
#define TUFFY_INFER_WALKSAT_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "ground/rule_count_index.h"
#include "infer/problem.h"
#include "util/rng.h"

namespace tuffy {

/// One sample of a time-cost trace (the curves of Figures 3-6).
struct TracePoint {
  double seconds = 0.0;
  uint64_t flips = 0;
  double cost = 0.0;
};

struct WalkSatOptions {
  uint64_t max_flips = 100000;
  int max_tries = 1;
  /// Probability of a random (non-greedy) flip, Algorithm 1 line 7.
  double p_random = 0.5;
  /// Effective |weight| of hard clauses during search.
  double hard_weight = 1e6;
  double timeout_seconds = std::numeric_limits<double>::infinity();
  /// If > 0, appends a TracePoint to the result every N flips.
  uint64_t trace_every_flips = 0;
  /// Start from a random assignment (true) or all-false (false). The
  /// all-false start matches the lazy-inference hypothesis.
  bool init_random = true;
  /// Optional externally supplied initial assignment (overrides
  /// init_random when non-null). Must have problem.num_atoms entries.
  const std::vector<uint8_t>* initial = nullptr;
};

struct WalkSatResult {
  std::vector<uint8_t> best_truth;
  double best_cost = std::numeric_limits<double>::infinity();
  uint64_t flips = 0;
  double seconds = 0.0;
  std::vector<TracePoint> trace;
  /// Actual bytes of the search state + arena this run held in memory
  /// (WalkSatState::EstimateBytes + ClauseArena::EstimateBytes).
  size_t state_bytes = 0;

  double FlipsPerSecond() const {
    return seconds > 0 ? static_cast<double>(flips) / seconds : 0.0;
  }
};

/// Incremental clause-evaluation state shared by WalkSAT, SampleSAT, and
/// the Gauss-Seidel driver, running off a flat ClauseArena: per-clause
/// true-literal counts, the violated set, cached per-atom flip-cost
/// deltas (UBCSAT-style make/break bookkeeping), and O(degree(atom))
/// flips with O(1) FlipDelta reads. A clause with w >= 0 (or hard) is
/// violated when no literal is true; a clause with w < 0 is violated when
/// some literal is true (Section 2.2). See docs/INFER_KERNEL.md for the
/// layout and the invariants tying truth_, num_true_, flip_delta_, and
/// cost_ together.
class WalkSatState {
 public:
  WalkSatState(const Problem* problem, double hard_weight);
  /// Runs directly off an arena that is not owned by a Problem (MC-SAT
  /// slice sampling). The arena must outlive the state.
  WalkSatState(const ClauseArena* arena, double hard_weight);

  /// Re-attaches to a (possibly different) arena, reusing this state's
  /// buffers — the zero-allocation path MC-SAT uses once per sample. The
  /// assignment is reset to all-false but the derived bookkeeping is NOT
  /// rebuilt: call one of the assignment setters below (each rebuilds)
  /// before querying or flipping.
  void Attach(const ClauseArena* arena, double hard_weight);

  void SetAssignment(const std::vector<uint8_t>& truth);
  void RandomAssignment(Rng* rng);
  void AllFalseAssignment();

  double cost() const { return cost_; }
  size_t num_violated() const { return violated_.size(); }
  bool HasViolated() const { return !violated_.empty(); }

  /// Uniformly random violated clause index. Requires HasViolated().
  uint32_t SampleViolated(Rng* rng) const {
    return violated_[rng->Uniform(violated_.size())];
  }

  /// Cost change if `atom` were flipped — a cached O(1) read.
  double FlipDelta(AtomId atom) const { return flip_delta_[atom]; }

  /// Flips `atom`, updating all bookkeeping (including the cached deltas
  /// of every atom sharing a clause whose criticality changed).
  void Flip(AtomId atom);

  const std::vector<uint8_t>& truth() const { return truth_; }
  const ClauseArena& arena() const { return *arena_; }
  double hard_weight() const { return hard_weight_; }

  /// Enables per-first-order-formula satisfied-grounding statistics (the
  /// n_i of weight learning): formula_true_counts()[r] is the number of
  /// true ground clauses attributable to rule r in the *current*
  /// assignment, weighted by grounding multiplicity. `index` must be
  /// built over the same clause ids as this state's arena and must
  /// outlive the state. Counts are initialized from the current
  /// assignment (one scan), then maintained incrementally: a flip costs
  /// O(index entries of the clauses whose truth toggled) — almost always
  /// one entry per toggled clause — riding the same make/break
  /// bookkeeping that maintains the violated set; no rescan ever
  /// happens. Attach() detaches the index (slice arenas have different
  /// clause ids); re-enable after attaching if needed.
  void EnableFormulaStats(const RuleCountIndex* index);
  const std::vector<int64_t>& formula_true_counts() const {
    return formula_true_;
  }

  /// Bytes held by this state's derived arrays (occurrence CSR, cached
  /// deltas, violated bookkeeping) — the search-state footprint that,
  /// with ClauseArena::EstimateBytes, MemTracker charges as kSearch.
  size_t EstimateBytes() const;

 private:
  /// One entry of an atom's occurrence list, self-contained so that unit
  /// and binary clauses — the bulk of every MLN workload — are handled
  /// without touching any per-clause state:
  ///  - `clause_and_sign` packs (clause index << 1) | literal-is-positive.
  ///  - `other` is (other atom << 1) | other-literal-is-positive for a
  ///    binary clause over two distinct atoms, kUnit for a unit clause,
  ///    kGeneral for anything else (length >= 3, or a degenerate binary
  ///    clause mentioning one atom twice) — those walk cstate_.
  ///  - `signed_cost` is +|w_eff| for a positive-convention clause (hard
  ///    or w >= 0), -|w_eff| for a negative one, with hard clauses
  ///    resolved to hard_weight at Attach. The sign *is* the violation
  ///    convention (std::signbit distinguishes, including w == 0 ->
  ///    +0.0), so the flip loop needs no weight array, fabs(), or
  ///    hard-ness branch.
  /// Occurrence lists are walked sequentially; at 16 bytes per entry the
  /// walk streams instead of gathering per-clause cache lines.
  struct OccEntry {
    uint32_t clause_and_sign;
    uint32_t other;
    double signed_cost;
  };
  static constexpr uint32_t kGeneral = 0xFFFFFFFEu;
  static constexpr uint32_t kUnit = 0xFFFFFFFFu;

  /// Mutable per-clause counters, consulted only for kGeneral clauses.
  struct ClauseState {
    int32_t num_true;
    /// Sum (mod 2^32) of the atom ids of the currently-true literals.
    /// When num_true == 1 this *is* the critical atom.
    uint32_t critical_sum;
  };

  void BuildOccurrences();
  void Rebuild();
  void SetViolated(uint32_t clause, bool violated, double cost);
  double SignedCost(uint32_t clause) const;
  void RecomputeFormulaCounts();

  const ClauseArena* arena_;
  double hard_weight_;
  std::vector<uint8_t> truth_;
  /// Atom-side occurrence CSR (see OccEntry).
  std::vector<uint32_t> occ_offsets_;  // size num_atoms + 1
  std::vector<OccEntry> occ_entries_;
  std::vector<ClauseState> cstate_;
  /// Cached flip-cost delta per atom (see FlipDelta).
  std::vector<double> flip_delta_;
  std::vector<uint32_t> violated_;
  std::vector<int32_t> violated_pos_;  // index into violated_, or -1
  double cost_ = 0.0;
  /// Optional formula-statistics hook (see EnableFormulaStats).
  const RuleCountIndex* stats_index_ = nullptr;
  std::vector<int64_t> formula_true_;
};

/// One WalkSAT move (Algorithm 1, lines 5-10), shared by WalkSat,
/// IncrementalWalkSat, and SampleSAT: sample a violated clause, then pick
/// either a random atom of it or the cached-delta minimizer. Requires
/// state.HasViolated().
inline AtomId ChooseWalkSatMove(const WalkSatState& state, double p_random,
                                Rng* rng) {
  const ClauseArena& arena = state.arena();
  const uint32_t ci = state.SampleViolated(rng);
  const Lit* lits = arena.clause_lits(ci);
  const uint32_t len = arena.clause_size(ci);
  if (rng->NextDouble() <= p_random) {
    return LitAtom(lits[rng->Uniform(len)]);
  }
  double best_delta = std::numeric_limits<double>::infinity();
  AtomId chosen = LitAtom(lits[0]);
  for (uint32_t i = 0; i < len; ++i) {
    const AtomId a = LitAtom(lits[i]);
    const double d = state.FlipDelta(a);
    if (d < best_delta) {
      best_delta = d;
      chosen = a;
    }
  }
  return chosen;
}

/// Best-assignment bookkeeping that avoids copying the whole truth vector
/// on every improving flip. It keeps a base assignment plus a log of
/// atoms flipped since; an improvement folds the log into the base (O(#
/// flips since the last improvement), amortized O(1) per flip), and the
/// best assignment is materialized only on request.
class BestTruthTracker {
 public:
  /// Starts tracking with `truth` as the current best (cost `cost`).
  void Reset(const std::vector<uint8_t>& truth, double cost) {
    base_ = truth;
    log_.clear();
    best_cost_ = cost;
    pinned_ = false;
  }

  /// Restarts the flip log from `current` (e.g. after a reseed or a new
  /// try) without losing the best seen so far.
  void RebaseTo(const std::vector<uint8_t>& current) {
    if (!pinned_) {
      cache_ = base_;  // pin the best before abandoning the log
      pinned_ = true;
    }
    base_ = current;
    log_.clear();
  }

  void OnFlip(AtomId atom) { log_.push_back(atom); }

  /// Records that the *current* assignment (base + log) is a new best.
  void OnImproved(double cost) {
    best_cost_ = cost;
    for (AtomId a : log_) base_[a] ^= 1;
    log_.clear();
    pinned_ = false;
  }

  /// Bounds log memory across long plateaus; call once per flip.
  void MaybeRebase(const std::vector<uint8_t>& current) {
    if (log_.size() > base_.size() + 64) RebaseTo(current);
  }

  double best_cost() const { return best_cost_; }
  /// The best assignment seen. The reference stays valid but its contents
  /// may change on the next OnImproved/Reset; copy to retain.
  const std::vector<uint8_t>& best_truth() const {
    return pinned_ ? cache_ : base_;
  }

 private:
  std::vector<uint8_t> base_;  // best assignment, or rebase point
  std::vector<AtomId> log_;    // flips applied on top of base_
  double best_cost_ = std::numeric_limits<double>::infinity();
  /// True when cache_ holds the best assignment and base_ is merely the
  /// current rebase point (no improvement since the last RebaseTo).
  bool pinned_ = false;
  std::vector<uint8_t> cache_;
};

/// The WalkSAT local search of Algorithm 1 (Kautz et al.), with best-
/// so-far tracking, flip accounting, optional deadline, and optional
/// time-cost tracing.
class WalkSat {
 public:
  WalkSat(const Problem* problem, WalkSatOptions options, Rng* rng)
      : problem_(problem), options_(options), rng_(rng) {}

  WalkSatResult Run();

 private:
  const Problem* problem_;
  WalkSatOptions options_;
  Rng* rng_;
};

/// Resumable WalkSAT: owns its search state across calls so a scheduler
/// can interleave many sub-problems (weighted round-robin over MRF
/// components, Section 3.3) or resume between Gauss-Seidel sweeps. Tracks
/// the best state seen on *this* problem, which is exactly the
/// component-aware bookkeeping of Theorem 3.1.
class IncrementalWalkSat {
 public:
  /// `options.max_flips/max_tries/trace_*` are ignored; flips are driven
  /// by RunFlips.
  IncrementalWalkSat(const Problem* problem, WalkSatOptions options, Rng* rng);

  /// Continues the search for up to `n` more flips (stops early at cost
  /// 0). Returns the number of flips actually performed.
  uint64_t RunFlips(uint64_t n);

  double best_cost() const { return best_.best_cost(); }
  const std::vector<uint8_t>& best_truth() const { return best_.best_truth(); }
  double current_cost() const { return state_.cost(); }
  const std::vector<uint8_t>& current_truth() const { return state_.truth(); }
  uint64_t flips() const { return flips_; }
  /// Bytes of the owned search state's derived arrays.
  size_t state_bytes() const { return state_.EstimateBytes(); }

  /// Re-seeds the current state (keeps the best-so-far bookkeeping).
  void SetAssignment(const std::vector<uint8_t>& truth);

 private:
  const Problem* problem_;
  WalkSatOptions options_;
  Rng* rng_;
  WalkSatState state_;
  BestTruthTracker best_;
  uint64_t flips_ = 0;
};

}  // namespace tuffy

#endif  // TUFFY_INFER_WALKSAT_H_
