#ifndef TUFFY_INFER_WALKSAT_H_
#define TUFFY_INFER_WALKSAT_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "infer/problem.h"
#include "util/rng.h"

namespace tuffy {

/// One sample of a time-cost trace (the curves of Figures 3-6).
struct TracePoint {
  double seconds = 0.0;
  uint64_t flips = 0;
  double cost = 0.0;
};

struct WalkSatOptions {
  uint64_t max_flips = 100000;
  int max_tries = 1;
  /// Probability of a random (non-greedy) flip, Algorithm 1 line 7.
  double p_random = 0.5;
  /// Effective |weight| of hard clauses during search.
  double hard_weight = 1e6;
  double timeout_seconds = std::numeric_limits<double>::infinity();
  /// If > 0, appends a TracePoint to the result every N flips.
  uint64_t trace_every_flips = 0;
  /// Start from a random assignment (true) or all-false (false). The
  /// all-false start matches the lazy-inference hypothesis.
  bool init_random = true;
  /// Optional externally supplied initial assignment (overrides
  /// init_random when non-null). Must have problem.num_atoms entries.
  const std::vector<uint8_t>* initial = nullptr;
};

struct WalkSatResult {
  std::vector<uint8_t> best_truth;
  double best_cost = std::numeric_limits<double>::infinity();
  uint64_t flips = 0;
  double seconds = 0.0;
  std::vector<TracePoint> trace;

  double FlipsPerSecond() const {
    return seconds > 0 ? static_cast<double>(flips) / seconds : 0.0;
  }
};

/// Incremental clause-evaluation state shared by WalkSAT, SampleSAT, and
/// the Gauss-Seidel driver: per-clause true-literal counts, the violated
/// set, and O(degree(atom)) flips. A clause with w >= 0 (or hard) is
/// violated when no literal is true; a clause with w < 0 is violated when
/// some literal is true (Section 2.2).
class WalkSatState {
 public:
  WalkSatState(const Problem* problem, double hard_weight);

  void SetAssignment(const std::vector<uint8_t>& truth);
  void RandomAssignment(Rng* rng);
  void AllFalseAssignment();

  double cost() const { return cost_; }
  size_t num_violated() const { return violated_.size(); }
  bool HasViolated() const { return !violated_.empty(); }

  /// Uniformly random violated clause index. Requires HasViolated().
  uint32_t SampleViolated(Rng* rng) const {
    return violated_[rng->Uniform(violated_.size())];
  }

  /// Cost change if `atom` were flipped.
  double FlipDelta(AtomId atom) const;

  /// Flips `atom`, updating all bookkeeping.
  void Flip(AtomId atom);

  const std::vector<uint8_t>& truth() const { return truth_; }
  const Problem& problem() const { return *problem_; }
  double EffectiveWeight(const SearchClause& c) const {
    return c.hard ? hard_weight_ : c.weight;
  }

 private:
  void Rebuild();
  void SetViolated(uint32_t clause, bool violated);
  bool IsViolated(uint32_t clause) const {
    const SearchClause& c = problem_->clauses[clause];
    bool has_true = num_true_[clause] > 0;
    return (c.hard || c.weight >= 0) ? !has_true : has_true;
  }

  const Problem* problem_;
  double hard_weight_;
  std::vector<uint8_t> truth_;
  std::vector<int32_t> num_true_;
  /// Occurrence lists: for each atom, (clause index, literal) pairs.
  std::vector<std::vector<std::pair<uint32_t, Lit>>> occurrences_;
  std::vector<uint32_t> violated_;
  std::vector<int32_t> violated_pos_;  // index into violated_, or -1
  double cost_ = 0.0;
};

/// The WalkSAT local search of Algorithm 1 (Kautz et al.), with best-
/// so-far tracking, flip accounting, optional deadline, and optional
/// time-cost tracing.
class WalkSat {
 public:
  WalkSat(const Problem* problem, WalkSatOptions options, Rng* rng)
      : problem_(problem), options_(options), rng_(rng) {}

  WalkSatResult Run();

 private:
  const Problem* problem_;
  WalkSatOptions options_;
  Rng* rng_;
};

/// Resumable WalkSAT: owns its search state across calls so a scheduler
/// can interleave many sub-problems (weighted round-robin over MRF
/// components, Section 3.3) or resume between Gauss-Seidel sweeps. Tracks
/// the best state seen on *this* problem, which is exactly the
/// component-aware bookkeeping of Theorem 3.1.
class IncrementalWalkSat {
 public:
  /// `options.max_flips/max_tries/trace_*` are ignored; flips are driven
  /// by RunFlips.
  IncrementalWalkSat(const Problem* problem, WalkSatOptions options, Rng* rng);

  /// Continues the search for up to `n` more flips (stops early at cost
  /// 0). Returns the number of flips actually performed.
  uint64_t RunFlips(uint64_t n);

  double best_cost() const { return best_cost_; }
  const std::vector<uint8_t>& best_truth() const { return best_truth_; }
  double current_cost() const { return state_.cost(); }
  const std::vector<uint8_t>& current_truth() const { return state_.truth(); }
  uint64_t flips() const { return flips_; }

  /// Re-seeds the current state (keeps the best-so-far bookkeeping).
  void SetAssignment(const std::vector<uint8_t>& truth);

 private:
  const Problem* problem_;
  WalkSatOptions options_;
  Rng* rng_;
  WalkSatState state_;
  std::vector<uint8_t> best_truth_;
  double best_cost_ = std::numeric_limits<double>::infinity();
  uint64_t flips_ = 0;
};

}  // namespace tuffy

#endif  // TUFFY_INFER_WALKSAT_H_
