#ifndef TUFFY_INFER_PROBLEM_H_
#define TUFFY_INFER_PROBLEM_H_

#include <cstdint>
#include <vector>

#include "ground/ground_clause.h"

namespace tuffy {

/// A weighted ground clause in search form. Literals use the same signed
/// encoding as GroundClause but reference *local* atom ids when the
/// problem is a sub-MRF.
struct SearchClause {
  std::vector<Lit> lits;
  double weight = 0.0;
  bool hard = false;
};

/// A self-contained MaxSAT search problem: the whole MRF, one connected
/// component, or one partition with its cut clauses conditioned on the
/// frozen values of external atoms.
struct Problem {
  size_t num_atoms = 0;
  std::vector<SearchClause> clauses;

  /// Size metric (atoms + literals), matching ComponentSizeMetric.
  uint64_t SizeMetric() const {
    uint64_t s = num_atoms;
    for (const SearchClause& c : clauses) s += c.lits.size();
    return s;
  }

  /// Exact cost of a truth assignment, by definition (Eq. 1): the sum of
  /// |w| over violated clauses, where a clause with w > 0 (or hard) is
  /// violated when false and a clause with w < 0 is violated when true.
  /// Hard clauses contribute `hard_weight` each.
  double EvalCost(const std::vector<uint8_t>& truth,
                  double hard_weight) const;
};

/// A sub-problem over a subset of the global atoms, with the local-to-
/// global atom id mapping retained so results can be merged back.
struct SubProblem {
  Problem problem;
  /// global_atom[local_id] = global AtomId.
  std::vector<AtomId> global_atom;
};

/// Builds the trivial whole-MRF problem (identity atom mapping).
Problem MakeWholeProblem(size_t num_atoms,
                         const std::vector<GroundClause>& clauses);

/// Builds the sub-problem spanned by `atom_ids`, containing the clauses
/// `clause_ids` (which must only reference those atoms). Literal atom ids
/// are renumbered to 0..atom_ids.size()-1.
SubProblem BuildSubProblem(const std::vector<GroundClause>& all_clauses,
                           const std::vector<uint32_t>& clause_ids,
                           const std::vector<AtomId>& atom_ids);

/// Builds the conditioned sub-problem for Gauss-Seidel partition search
/// (Section 3.4): like BuildSubProblem, but additionally takes the cut
/// clauses and the current global truth assignment. A cut literal over an
/// external atom is resolved against `global_truth`: a true literal
/// satisfies (drops) the clause, a false one is removed.
SubProblem BuildConditionedSubProblem(
    const std::vector<GroundClause>& all_clauses,
    const std::vector<uint32_t>& clause_ids,
    const std::vector<uint32_t>& cut_clause_ids,
    const std::vector<AtomId>& atom_ids,
    const std::vector<int32_t>& partition_of_atom, int32_t partition,
    const std::vector<uint8_t>& global_truth);

}  // namespace tuffy

#endif  // TUFFY_INFER_PROBLEM_H_
