#ifndef TUFFY_INFER_PROBLEM_H_
#define TUFFY_INFER_PROBLEM_H_

#include <cstdint>
#include <vector>

#include "ground/ground_clause.h"

namespace tuffy {

/// A weighted ground clause in search form. Literals use the same signed
/// encoding as GroundClause but reference *local* atom ids when the
/// problem is a sub-MRF.
struct SearchClause {
  std::vector<Lit> lits;
  double weight = 0.0;
  bool hard = false;
};

/// Flat CSR ("arena") view of a clause set — the search-kernel layout
/// shared by every WalkSatState over a problem (see docs/INFER_KERNEL.md).
///
/// The literals of clause `c` live contiguously in
/// `lit_data[clause_offsets[c] .. clause_offsets[c+1])`, with the signed
/// weight, its precomputed absolute value, and the hard / positive flags
/// in parallel arrays indexed by clause. `positive[c]` caches the
/// violation convention of Section 2.2: a clause with w >= 0 (or hard) is
/// violated when no literal is true, a clause with w < 0 when some
/// literal is true. `abs_weight` is precomputed so search states resolve
/// effective clause costs with a single load — no fabs() or hard-ness
/// branch anywhere near the flip loop.
///
/// The atom-side occurrence lists live in WalkSatState, not here: their
/// entries embed the effective clause cost, which depends on the state's
/// hard_weight.
///
/// AddClause normalizes each clause: exact duplicate literals are
/// dropped (logically redundant in a disjunction) and a clause containing
/// both x and !x is marked `frozen` — its truth value is constant, so it
/// is kept for cost accounting (a negative-weight tautology is
/// permanently violated) but excluded from the flip bookkeeping, where
/// the counter arithmetic assumes one literal per atom.
///
/// The appending API (Clear / AddClause / Finish) reuses vector capacity,
/// which lets MC-SAT rebuild its per-round slice arena with no
/// steady-state allocation.
struct ClauseArena {
  std::vector<uint32_t> clause_offsets;  // size num_clauses() + 1
  std::vector<Lit> lit_data;
  std::vector<double> weight;      // signed rule weight
  std::vector<double> abs_weight;  // fabs(weight), a single load
  std::vector<uint8_t> hard;
  std::vector<uint8_t> positive;  // hard || weight >= 0
  std::vector<uint8_t> frozen;    // tautology: constant truth value
  size_t num_atoms = 0;

  size_t num_clauses() const {
    return clause_offsets.empty() ? 0 : clause_offsets.size() - 1;
  }
  uint32_t clause_size(uint32_t c) const {
    return clause_offsets[c + 1] - clause_offsets[c];
  }
  const Lit* clause_lits(uint32_t c) const {
    return lit_data.data() + clause_offsets[c];
  }

  /// Bytes held by the arena's arrays (capacities, i.e. the real
  /// footprint of the flat layout — what MemTracker should see).
  size_t EstimateBytes() const;

  /// Resets to an empty clause set, keeping allocated capacity.
  void Clear();
  /// Appends one clause.
  void AddClause(const Lit* lits, size_t n, double w, bool is_hard);
  /// Records the atom count. Must be called after the last AddClause and
  /// before the arena is searched.
  void Finish(size_t n_atoms) { num_atoms = n_atoms; }
  /// Clear + AddClause for each + Finish.
  void BuildFrom(size_t n_atoms, const std::vector<SearchClause>& clauses);
};

/// A self-contained MaxSAT search problem: the whole MRF, one connected
/// component, or one partition with its cut clauses conditioned on the
/// frozen values of external atoms.
struct Problem {
  size_t num_atoms = 0;
  std::vector<SearchClause> clauses;

  /// Size metric (atoms + literals), matching ComponentSizeMetric.
  uint64_t SizeMetric() const {
    uint64_t s = num_atoms;
    for (const SearchClause& c : clauses) s += c.lits.size();
    return s;
  }

  /// Exact cost of a truth assignment, by definition (Eq. 1): the sum of
  /// |w| over violated clauses, where a clause with w > 0 (or hard) is
  /// violated when false and a clause with w < 0 is violated when true.
  /// Hard clauses contribute `hard_weight` each.
  double EvalCost(const std::vector<uint8_t>& truth,
                  double hard_weight) const;

  /// The CSR search view of `clauses`, built on first use and cached.
  /// `clauses` and `num_atoms` must not change afterwards (call
  /// InvalidateArena() if they do). Not safe to trigger the first build
  /// from multiple threads concurrently.
  const ClauseArena& arena() const {
    if (!arena_built_) {
      arena_.BuildFrom(num_atoms, clauses);
      arena_built_ = true;
    }
    return arena_;
  }
  void InvalidateArena() { arena_built_ = false; }

 private:
  mutable ClauseArena arena_;
  mutable bool arena_built_ = false;
};

/// A sub-problem over a subset of the global atoms, with the local-to-
/// global atom id mapping retained so results can be merged back.
struct SubProblem {
  Problem problem;
  /// global_atom[local_id] = global AtomId.
  std::vector<AtomId> global_atom;
};

/// Builds the trivial whole-MRF problem (identity atom mapping).
Problem MakeWholeProblem(size_t num_atoms,
                         const std::vector<GroundClause>& clauses);

/// Builds the sub-problem spanned by `atom_ids`, containing the clauses
/// `clause_ids` (which must only reference those atoms). Literal atom ids
/// are renumbered to 0..atom_ids.size()-1.
SubProblem BuildSubProblem(const std::vector<GroundClause>& all_clauses,
                           const std::vector<uint32_t>& clause_ids,
                           const std::vector<AtomId>& atom_ids);

/// Builds the conditioned sub-problem for Gauss-Seidel partition search
/// (Section 3.4): like BuildSubProblem, but additionally takes the cut
/// clauses and the current global truth assignment. A cut literal over an
/// external atom is resolved against `global_truth`: a true literal
/// satisfies (drops) the clause, a false one is removed.
SubProblem BuildConditionedSubProblem(
    const std::vector<GroundClause>& all_clauses,
    const std::vector<uint32_t>& clause_ids,
    const std::vector<uint32_t>& cut_clause_ids,
    const std::vector<AtomId>& atom_ids,
    const std::vector<int32_t>& partition_of_atom, int32_t partition,
    const std::vector<uint8_t>& global_truth);

}  // namespace tuffy

#endif  // TUFFY_INFER_PROBLEM_H_
