#ifndef TUFFY_INFER_GAUSS_SEIDEL_H_
#define TUFFY_INFER_GAUSS_SEIDEL_H_

#include <cstdint>
#include <vector>

#include "infer/walksat.h"
#include "mrf/partitioner.h"

namespace tuffy {

struct GaussSeidelOptions {
  /// Number of sweeps T over all partitions (Section 3.4).
  int sweeps = 4;
  /// WalkSAT flips per partition per sweep.
  uint64_t flips_per_partition = 100000;
  double p_random = 0.5;
  double hard_weight = 1e6;
  double timeout_seconds = std::numeric_limits<double>::infinity();
  bool init_random = true;
};

struct GaussSeidelResult {
  std::vector<uint8_t> truth;
  /// Exact global cost of `truth` over all clauses (including cut).
  double cost = 0.0;
  uint64_t flips = 0;
  double seconds = 0.0;
  /// One point per sweep: global cost after the sweep.
  std::vector<TracePoint> trace;
};

/// Partition-aware search (Section 3.4): an instance of the Gauss-Seidel
/// method. For t = 1..T, for each partition i, WalkSAT runs on partition
/// i's clauses plus its cut clauses conditioned on the current values of
/// atoms in other partitions; the best local state found is written back
/// before moving to the next partition.
GaussSeidelResult RunGaussSeidel(size_t num_atoms,
                                 const std::vector<GroundClause>& clauses,
                                 const PartitionResult& partitions,
                                 const GaussSeidelOptions& options,
                                 uint64_t seed);

}  // namespace tuffy

#endif  // TUFFY_INFER_GAUSS_SEIDEL_H_
