#ifndef TUFFY_MRF_COMPONENTS_H_
#define TUFFY_MRF_COMPONENTS_H_

#include <cstdint>
#include <vector>

#include "ground/ground_clause.h"

namespace tuffy {

/// Connected components of the MRF hypergraph (atoms = nodes, ground
/// clauses = hyperedges), computed with one scan of the clause table over
/// an in-memory union-find structure, exactly as in Section 3.3.
struct ComponentSet {
  /// Component index of every atom (0..num_components-1).
  std::vector<int32_t> component_of_atom;
  /// Atom ids per component.
  std::vector<std::vector<AtomId>> atoms;
  /// Clause indices per component (every clause is within one component).
  std::vector<std::vector<uint32_t>> clauses;

  size_t num_components() const { return atoms.size(); }
};

/// Detects components. Atoms that appear in no clause each form their own
/// singleton component.
ComponentSet DetectComponents(size_t num_atoms,
                              const std::vector<GroundClause>& clauses);

/// Size metric used for memory budgeting: number of atoms plus total
/// literal count (the paper's "total number of literals and atoms").
uint64_t ComponentSizeMetric(const ComponentSet& components, size_t index,
                             const std::vector<GroundClause>& clauses);

}  // namespace tuffy

#endif  // TUFFY_MRF_COMPONENTS_H_
