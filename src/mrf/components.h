#ifndef TUFFY_MRF_COMPONENTS_H_
#define TUFFY_MRF_COMPONENTS_H_

#include <cstdint>
#include <vector>

#include "ground/ground_clause.h"

namespace tuffy {

/// Connected components of the MRF hypergraph (atoms = nodes, ground
/// clauses = hyperedges), computed with one scan of the clause table over
/// an in-memory union-find structure, exactly as in Section 3.3.
struct ComponentSet {
  /// Component index of every atom (0..num_components-1).
  std::vector<int32_t> component_of_atom;
  /// Atom ids per component.
  std::vector<std::vector<AtomId>> atoms;
  /// Clause indices per component (every clause is within one component).
  std::vector<std::vector<uint32_t>> clauses;

  size_t num_components() const { return atoms.size(); }
};

/// Detects components. Atoms that appear in no clause each form their own
/// singleton component.
ComponentSet DetectComponents(size_t num_atoms,
                              const std::vector<GroundClause>& clauses);

/// Size metric used for memory budgeting: number of atoms plus total
/// literal count (the paper's "total number of literals and atoms").
uint64_t ComponentSizeMetric(const ComponentSet& components, size_t index,
                             const std::vector<GroundClause>& clauses);

/// Dirty-component bookkeeping for the serving layer (delta inference).
/// Maps each component of `next` to the component of `prev` whose cached
/// search state it inherits: entry c is the `prev` component id when
/// component c is *clean*, or -1 when it is *dirty* and must be
/// re-searched. A component is dirty iff it contains a dirty atom
/// (`atom_dirty`, indexed by atom id and sized for `next`) or an atom
/// that did not exist in `prev`.
///
/// Soundness: every clause edit (add / remove / reweight) marks the
/// clause's atoms dirty, so a component with no dirty atom has exactly
/// the atom and clause set of its `prev` counterpart — membership only
/// changes through an edited clause, and both merges (added clause) and
/// splits (removed clause) touch dirty atoms. Its cached best truth and
/// cost therefore remain verbatim valid.
std::vector<int32_t> MapCleanComponents(const ComponentSet& prev,
                                        const ComponentSet& next,
                                        const std::vector<uint8_t>& atom_dirty);

}  // namespace tuffy

#endif  // TUFFY_MRF_COMPONENTS_H_
