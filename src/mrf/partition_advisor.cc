#include "mrf/partition_advisor.h"

#include <algorithm>
#include <cmath>

namespace tuffy {

double ScorePartitioning(const PartitionResult& partitions,
                         size_t num_clauses, uint64_t steps_per_round) {
  // N: partitions that actually contain search work.
  size_t n = 0;
  for (const auto& clause_list : partitions.clauses) {
    if (!clause_list.empty()) ++n;
  }
  // 2^(N/3), capped so the score stays finite and comparable.
  double exponent = std::min(static_cast<double>(n) / 3.0, 60.0);
  double speedup = std::exp2(exponent);
  double slowdown = 0.0;
  if (num_clauses > 0) {
    slowdown = static_cast<double>(steps_per_round) *
               static_cast<double>(partitions.cut_clauses.size()) /
               static_cast<double>(num_clauses);
  }
  return speedup - slowdown;
}

PartitioningAdvice ChoosePartitionSize(
    size_t num_atoms, const std::vector<GroundClause>& clauses,
    const std::vector<uint64_t>& candidate_betas, uint64_t steps_per_round) {
  PartitioningAdvice advice;
  double best = -std::numeric_limits<double>::infinity();
  for (uint64_t beta : candidate_betas) {
    PartitionResult pr = PartitionMrf(num_atoms, clauses, beta);
    double score = ScorePartitioning(pr, clauses.size(), steps_per_round);
    advice.scores.push_back(score);
    advice.partition_counts.push_back(pr.num_partitions());
    advice.cut_sizes.push_back(pr.cut_clauses.size());
    if (score > best) {
      best = score;
      advice.chosen_beta = beta;
    }
  }
  return advice;
}

}  // namespace tuffy
