#ifndef TUFFY_MRF_BIN_PACKING_H_
#define TUFFY_MRF_BIN_PACKING_H_

#include <cstdint>
#include <vector>

namespace tuffy {

/// Result of bin-packing items into capacity-bounded batches.
struct BinPacking {
  /// Bin index of each item (aligned with the input sizes vector).
  std::vector<int> bin_of_item;
  int num_bins = 0;
};

/// First Fit Decreasing (Section 3.3, "Efficient Data Loading"): sorts
/// items by decreasing size and places each into the first bin with room.
/// Items larger than `capacity` get dedicated bins (the engine later runs
/// those partitions with the RDBMS-backed search instead).
BinPacking FirstFitDecreasing(const std::vector<uint64_t>& sizes,
                              uint64_t capacity);

}  // namespace tuffy

#endif  // TUFFY_MRF_BIN_PACKING_H_
