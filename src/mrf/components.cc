#include "mrf/components.h"

#include <unordered_map>

#include "util/union_find.h"

namespace tuffy {

ComponentSet DetectComponents(size_t num_atoms,
                              const std::vector<GroundClause>& clauses) {
  UnionFind uf(num_atoms);
  for (const GroundClause& c : clauses) {
    if (c.lits.empty()) continue;
    AtomId first = LitAtom(c.lits[0]);
    for (size_t i = 1; i < c.lits.size(); ++i) {
      uf.Union(first, LitAtom(c.lits[i]));
    }
  }
  ComponentSet out;
  out.component_of_atom.assign(num_atoms, -1);
  std::unordered_map<uint32_t, int32_t> root_to_comp;
  for (AtomId a = 0; a < num_atoms; ++a) {
    uint32_t root = uf.Find(a);
    auto [it, inserted] =
        root_to_comp.emplace(root, static_cast<int32_t>(out.atoms.size()));
    if (inserted) out.atoms.emplace_back();
    out.component_of_atom[a] = it->second;
    out.atoms[it->second].push_back(a);
  }
  out.clauses.resize(out.atoms.size());
  for (size_t ci = 0; ci < clauses.size(); ++ci) {
    if (clauses[ci].lits.empty()) continue;
    int32_t comp = out.component_of_atom[LitAtom(clauses[ci].lits[0])];
    out.clauses[comp].push_back(static_cast<uint32_t>(ci));
  }
  return out;
}

uint64_t ComponentSizeMetric(const ComponentSet& components, size_t index,
                             const std::vector<GroundClause>& clauses) {
  uint64_t size = components.atoms[index].size();
  for (uint32_t ci : components.clauses[index]) {
    size += clauses[ci].lits.size();
  }
  return size;
}

std::vector<int32_t> MapCleanComponents(
    const ComponentSet& prev, const ComponentSet& next,
    const std::vector<uint8_t>& atom_dirty) {
  const size_t prev_atoms = prev.component_of_atom.size();
  std::vector<int32_t> inherit(next.num_components(), -1);
  for (size_t c = 0; c < next.num_components(); ++c) {
    bool dirty = false;
    for (AtomId a : next.atoms[c]) {
      if (a >= prev_atoms || atom_dirty[a] != 0) {
        dirty = true;
        break;
      }
    }
    if (!dirty) inherit[c] = prev.component_of_atom[next.atoms[c][0]];
  }
  return inherit;
}

}  // namespace tuffy
