#include "mrf/partitioner.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/union_find.h"

namespace tuffy {

double PartitionResult::CutWeight(const std::vector<GroundClause>& all) const {
  double w = 0.0;
  for (uint32_t ci : cut_clauses) {
    w += all[ci].hard ? 1e9 : std::fabs(all[ci].weight);
  }
  return w;
}

PartitionResult PartitionMrf(size_t num_atoms,
                             const std::vector<GroundClause>& clauses,
                             uint64_t beta) {
  // Process clauses in descending |weight|; hard clauses first.
  std::vector<uint32_t> order(clauses.size());
  for (uint32_t i = 0; i < clauses.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    double wa = clauses[a].hard ? 1e18 : std::fabs(clauses[a].weight);
    double wb = clauses[b].hard ? 1e18 : std::fabs(clauses[b].weight);
    if (wa != wb) return wa > wb;
    return a < b;
  });

  UnionFind uf(num_atoms);
  // Load (atoms + literals) per current root.
  std::vector<uint64_t> load(num_atoms, 1);

  std::vector<bool> is_cut(clauses.size(), false);
  for (uint32_t ci : order) {
    const GroundClause& c = clauses[ci];
    if (c.lits.empty()) continue;
    // Distinct roots of this clause's atoms and their combined load.
    std::vector<uint32_t> roots;
    uint64_t combined = c.lits.size();
    for (Lit l : c.lits) {
      uint32_t r = uf.Find(LitAtom(l));
      bool seen = false;
      for (uint32_t existing : roots) seen |= (existing == r);
      if (!seen) {
        roots.push_back(r);
        combined += load[r];
      }
    }
    if (roots.size() == 1) {
      // Already one partition; the clause just adds its literals.
      if (load[roots[0]] + c.lits.size() <= beta) {
        load[roots[0]] += c.lits.size();
      } else {
        is_cut[ci] = true;
      }
      continue;
    }
    if (combined <= beta) {
      uint32_t merged = roots[0];
      for (size_t i = 1; i < roots.size(); ++i) {
        merged = uf.Union(merged, roots[i]);
      }
      load[uf.Find(merged)] = combined;
    } else {
      is_cut[ci] = true;
    }
  }

  PartitionResult out;
  out.partition_of_atom.assign(num_atoms, -1);
  std::unordered_map<uint32_t, int32_t> root_to_part;
  for (AtomId a = 0; a < num_atoms; ++a) {
    uint32_t root = uf.Find(a);
    auto [it, inserted] =
        root_to_part.emplace(root, static_cast<int32_t>(out.atoms.size()));
    if (inserted) {
      out.atoms.emplace_back();
      out.sizes.push_back(0);
    }
    out.partition_of_atom[a] = it->second;
    out.atoms[it->second].push_back(a);
    ++out.sizes[it->second];
  }
  out.clauses.resize(out.atoms.size());
  for (uint32_t ci = 0; ci < clauses.size(); ++ci) {
    const GroundClause& c = clauses[ci];
    if (c.lits.empty()) continue;
    if (is_cut[ci]) {
      // A clause marked cut for budget reasons may still have all atoms
      // in one partition (single-root overflow); treat it as internal in
      // that case to avoid needless Gauss-Seidel coupling.
      int32_t p0 = out.partition_of_atom[LitAtom(c.lits[0])];
      bool spans = false;
      for (Lit l : c.lits) {
        if (out.partition_of_atom[LitAtom(l)] != p0) spans = true;
      }
      if (spans) {
        out.cut_clauses.push_back(ci);
        continue;
      }
      is_cut[ci] = false;
    }
    int32_t p = out.partition_of_atom[LitAtom(c.lits[0])];
    out.clauses[p].push_back(ci);
    out.sizes[p] += c.lits.size();
  }
  return out;
}

}  // namespace tuffy
