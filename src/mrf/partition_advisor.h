#ifndef TUFFY_MRF_PARTITION_ADVISOR_H_
#define TUFFY_MRF_PARTITION_ADVISOR_H_

#include <cstdint>
#include <vector>

#include "ground/ground_clause.h"
#include "mrf/partitioner.h"

namespace tuffy {

/// The partitioning-benefit estimate of Appendix B.8:
///
///     W = 2^(N/3) - T * |cut clauses| / |E|
///
/// where N is the number of (non-trivial) partitions, T the number of
/// WalkSAT steps in one Gauss-Seidel round, and |E| the total clause
/// count. The first term captures the expected Theorem-3.1 speed-up, the
/// second the slow-down from clauses the partitions cannot reason about
/// jointly. The paper notes the formula is conservative; it still ranks
/// candidate granularities usefully.
double ScorePartitioning(const PartitionResult& partitions,
                         size_t num_clauses, uint64_t steps_per_round);

/// Advice produced by ChoosePartitionSize.
struct PartitioningAdvice {
  /// The winning size bound (an entry of the candidate list, or
  /// UINT64_MAX for "do not split beyond connected components").
  uint64_t chosen_beta = UINT64_MAX;
  /// W-score of each candidate, aligned with the input list.
  std::vector<double> scores;
  /// Number of partitions each candidate produced.
  std::vector<size_t> partition_counts;
  /// Cut size of each candidate.
  std::vector<size_t> cut_sizes;
};

/// Evaluates Algorithm 3 under each candidate size bound and returns the
/// bound with the best W-score (the basic heuristic of Section B.8 that
/// combines Theorem 3.1 with the Gauss-Seidel cost model).
PartitioningAdvice ChoosePartitionSize(
    size_t num_atoms, const std::vector<GroundClause>& clauses,
    const std::vector<uint64_t>& candidate_betas, uint64_t steps_per_round);

}  // namespace tuffy

#endif  // TUFFY_MRF_PARTITION_ADVISOR_H_
