#ifndef TUFFY_MRF_PARTITIONER_H_
#define TUFFY_MRF_PARTITIONER_H_

#include <cstdint>
#include <vector>

#include "ground/ground_clause.h"
#include "util/result.h"

namespace tuffy {

/// Output of the greedy MRF partitioner.
struct PartitionResult {
  /// Partition index of every atom.
  std::vector<int32_t> partition_of_atom;
  /// Atom ids per partition.
  std::vector<std::vector<AtomId>> atoms;
  /// Clauses fully contained in each partition.
  std::vector<std::vector<uint32_t>> clauses;
  /// Clauses spanning two or more partitions (the cut).
  std::vector<uint32_t> cut_clauses;
  /// Size metric (atoms + literals) per partition.
  std::vector<uint64_t> sizes;

  size_t num_partitions() const { return atoms.size(); }
  /// Total weight of cut clauses, the quantity Algorithm 3 heuristically
  /// minimizes.
  double CutWeight(const std::vector<GroundClause>& all) const;
};

/// Algorithm 3 (Appendix B.7): Kruskal-style agglomerative partitioning.
/// Clauses are scanned in descending |weight| (hard clauses first) and a
/// clause's atoms are merged into one partition unless that would grow
/// the partition beyond `beta` (size metric: atoms + literals). With
/// beta = UINT64_MAX the result is exactly the connected components.
///
/// Clauses whose atoms end up in different partitions form the cut and
/// are handled by the Gauss-Seidel partition-aware search (Section 3.4).
PartitionResult PartitionMrf(size_t num_atoms,
                             const std::vector<GroundClause>& clauses,
                             uint64_t beta);

}  // namespace tuffy

#endif  // TUFFY_MRF_PARTITIONER_H_
