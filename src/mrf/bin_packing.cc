#include "mrf/bin_packing.h"

#include <algorithm>

namespace tuffy {

BinPacking FirstFitDecreasing(const std::vector<uint64_t>& sizes,
                              uint64_t capacity) {
  std::vector<size_t> order(sizes.size());
  for (size_t i = 0; i < sizes.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (sizes[a] != sizes[b]) return sizes[a] > sizes[b];
    return a < b;
  });

  BinPacking out;
  out.bin_of_item.assign(sizes.size(), -1);
  std::vector<uint64_t> remaining;  // free space per bin
  for (size_t item : order) {
    uint64_t size = sizes[item];
    int bin = -1;
    if (size <= capacity) {
      for (size_t b = 0; b < remaining.size(); ++b) {
        if (remaining[b] >= size) {
          bin = static_cast<int>(b);
          break;
        }
      }
    }
    if (bin < 0) {
      bin = out.num_bins++;
      remaining.push_back(size <= capacity ? capacity : size);
    }
    remaining[bin] -= std::min<uint64_t>(remaining[bin], size);
    out.bin_of_item[item] = bin;
  }
  return out;
}

}  // namespace tuffy
