#ifndef TUFFY_DATAGEN_DATASETS_H_
#define TUFFY_DATAGEN_DATASETS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ground/ground_clause.h"
#include "mln/model.h"
#include "util/result.h"

namespace tuffy {

/// A generated workload: program + evidence, ready for the engine.
struct Dataset {
  std::string name;
  MlnProgram program;
  EvidenceDb evidence;
};

/// Relational Classification (RC): the paper-topic program of Figure 1
/// over a synthetic Cora-like citation graph. Papers are generated in
/// disjoint clusters (citations and co-authors stay within a cluster), so
/// the MRF has about `num_clusters` components, mirroring RC's 489.
struct RcParams {
  int num_clusters = 20;
  int papers_per_cluster = 12;
  int num_categories = 6;
  int authors_per_cluster = 6;
  int citations_per_paper = 3;
  /// Fraction of papers with a known label (evidence for cat).
  double labeled_fraction = 0.4;
  uint64_t seed = 1;
};
Result<Dataset> MakeRcDataset(const RcParams& params);

/// Information Extraction (IE): Citeseer-like citation segmentation.
/// Each citation is a short token sequence; token-evidence rules vote for
/// per-position field labels and a chain rule couples adjacent positions.
/// Every citation is an independent MRF component (IE's 5341 components
/// of small cliques).
struct IeParams {
  int num_citations = 300;
  int positions_per_citation = 4;
  int num_fields = 3;
  int vocabulary = 60;
  /// Number of token->field preference rules (IE has ~1K rules).
  int num_token_rules = 120;
  uint64_t seed = 2;
};
Result<Dataset> MakeIeDataset(const IeParams& params);

/// Link Prediction (LP): a CS-department database; the query predicate
/// advisedBy(student, prof) is supported by co-publication and teaching
/// relations. Shared professors make the MRF one connected component.
struct LpParams {
  int num_professors = 12;
  int num_students = 60;
  int num_courses = 20;
  int num_publications = 120;
  uint64_t seed = 3;
};
Result<Dataset> MakeLpDataset(const LpParams& params);

/// Entity Resolution (ER): deduplicating citation records. Similarity
/// evidence votes for sameBib pairs and a transitivity rule densely
/// couples all pairs, yielding one large dense component (ER's single
/// 2M-clause component).
struct ErParams {
  int num_records = 40;
  int num_entities = 12;  // true duplicate groups
  /// Probability of spurious similarity evidence between records of
  /// different entities.
  double noise = 0.02;
  uint64_t seed = 4;
};
Result<Dataset> MakeErDataset(const ErParams& params);

/// Example 1 of the paper (Section 3.3 / Figure 8): N independent
/// components, each with atoms {X_i, Y_i} and clauses
/// {(X_i, 1), (Y_i, 1), (X_i v Y_i, -1)}. Returned directly as an MRF
/// (2N atoms, 3N ground clauses); the optimum sets every atom true with
/// cost N (each negative clause is satisfied).
std::vector<GroundClause> MakeExample1Mrf(int num_components);

/// Randomized MRF guaranteed inside the tractable fragment of
/// src/infer/exact (docs/INFERENCE_EXACT.md), for the exact-oracle
/// harness. Per component: a random spanning tree of binary clauses
/// (plus optional parallel clauses over existing edges), optional unit
/// clauses, optional hard binary clauses, and optionally a hard unit
/// plus a 3-literal clause that hard-unit propagation shrinks to binary
/// (the conditioned/TML-style case). All weights are dyadic (multiples
/// of 1/8), so cost sums are FP-exact in any order, and every hard
/// clause is satisfied by a hidden random assignment — the component is
/// never hard-unsatisfiable.
struct TractableMrfParams {
  int num_components = 10;
  int min_atoms = 1;
  int max_atoms = 8;
  /// Per-atom probability of a soft unit clause.
  double unit_prob = 0.7;
  /// Per-tree-edge probability of one extra parallel binary clause.
  double extra_pair_prob = 0.3;
  /// Per-binary-clause probability of being hard.
  double hard_prob = 0.15;
  /// Per-soft-clause probability of a negative weight.
  double negative_prob = 0.3;
  /// Per-component probability of the conditioned case: a hard unit on
  /// atom 0 plus a 3-literal clause it shrinks to binary.
  double conditioned_prob = 0.3;
  uint64_t seed = 7;
};
/// `num_atoms_out` receives the total atom count (atoms of clause-less
/// single-atom components included, which appear in no clause).
std::vector<GroundClause> MakeTractableMrf(const TractableMrfParams& params,
                                           size_t* num_atoms_out);

}  // namespace tuffy

#endif  // TUFFY_DATAGEN_DATASETS_H_
