#include "datagen/datasets.h"

#include <algorithm>

#include "mln/parser.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace tuffy {

namespace {

/// Adds a true evidence atom by symbol names.
Status AddEvidence(Dataset* ds, const std::string& pred_name,
                   const std::vector<std::string>& args, bool truth = true) {
  TUFFY_ASSIGN_OR_RETURN(PredicateId pid,
                         ds->program.FindPredicate(pred_name));
  const Predicate& pred = ds->program.predicate(pid);
  GroundAtom atom;
  atom.pred = pid;
  atom.args.reserve(args.size());
  for (size_t i = 0; i < args.size(); ++i) {
    atom.args.push_back(
        ds->program.symbols().Intern(args[i], pred.arg_types[i]));
  }
  ds->evidence.Add(std::move(atom), truth);
  return Status::OK();
}

}  // namespace

// ------------------------------------------------------------------- RC

Result<Dataset> MakeRcDataset(const RcParams& params) {
  Dataset ds;
  ds.name = "RC";
  Rng rng(params.seed);

  std::string mln =
      "// Relational classification, Figure 1 of the paper\n"
      "*paper(paper, url)\n"
      "*wrote(author, paper)\n"
      "*refers(paper, paper)\n"
      "cat(paper, category)\n"
      "5 cat(p, c1), cat(p, c2) => c1 = c2\n"
      "1 wrote(x, p1), wrote(x, p2), cat(p1, c) => cat(p2, c)\n"
      "2 cat(p1, c), refers(p1, p2) => cat(p2, c)\n"
      "paper(p, u) => EXIST x wrote(x, p).\n"
      "-1 cat(p, \"Networking\")\n";
  TUFFY_ASSIGN_OR_RETURN(ds.program, ParseProgram(mln));

  // Category domain (the rule above already interned "Networking").
  static const char* kCatNames[] = {"Networking", "DB",     "AI",
                                    "Systems",    "Theory", "HCI",
                                    "Graphics",   "ML",     "PL"};
  std::vector<std::string> categories;
  for (int c = 0; c < params.num_categories; ++c) {
    std::string name = c < 9 ? kCatNames[c] : StrFormat("Cat%d", c);
    categories.push_back(name);
    ds.program.symbols().Intern(name, "category");
  }

  int paper_id = 0;
  int author_id = 0;
  for (int cl = 0; cl < params.num_clusters; ++cl) {
    // Cluster-local papers and authors; a dominant category with noise.
    int dominant = static_cast<int>(rng.Uniform(params.num_categories));
    std::vector<std::string> papers;
    for (int i = 0; i < params.papers_per_cluster; ++i) {
      papers.push_back(StrFormat("P%d", paper_id++));
    }
    std::vector<std::string> authors;
    for (int i = 0; i < params.authors_per_cluster; ++i) {
      authors.push_back(StrFormat("A%d", author_id++));
    }
    for (int i = 0; i < params.papers_per_cluster; ++i) {
      const std::string& p = papers[i];
      TUFFY_RETURN_IF_ERROR(
          AddEvidence(&ds, "paper", {p, StrFormat("u_%s", p.c_str())}));
      // One or two cluster authors per paper.
      int na = 1 + static_cast<int>(rng.Uniform(2));
      for (int a = 0; a < na; ++a) {
        TUFFY_RETURN_IF_ERROR(AddEvidence(
            &ds, "wrote",
            {authors[rng.Uniform(authors.size())], p}));
      }
      // Citations to earlier papers in the same cluster.
      for (int c = 0; c < params.citations_per_paper && i > 0; ++c) {
        TUFFY_RETURN_IF_ERROR(
            AddEvidence(&ds, "refers", {p, papers[rng.Uniform(i)]}));
      }
      // Label a fraction of the papers (mostly the dominant category).
      if (rng.NextDouble() < params.labeled_fraction) {
        int cat = rng.NextDouble() < 0.85
                      ? dominant
                      : static_cast<int>(rng.Uniform(params.num_categories));
        TUFFY_RETURN_IF_ERROR(AddEvidence(&ds, "cat", {p, categories[cat]}));
      }
    }
  }
  return ds;
}

// ------------------------------------------------------------------- IE

Result<Dataset> MakeIeDataset(const IeParams& params) {
  Dataset ds;
  ds.name = "IE";
  Rng rng(params.seed);

  std::string mln =
      "// Citation segmentation\n"
      "*token(word, pos, citation)\n"
      "*nextpos(pos, pos)\n"
      "infield(pos, field, citation)\n"
      "3 infield(p, f1, c), infield(p, f2, c) => f1 = f2\n"
      "0.5 infield(p1, f, c), nextpos(p1, p2) => infield(p2, f, c)\n";
  // Token-preference rules: token W at a position votes for a field.
  for (int r = 0; r < params.num_token_rules; ++r) {
    int w = static_cast<int>(rng.Uniform(params.vocabulary));
    int f = static_cast<int>(rng.Uniform(params.num_fields));
    double weight = 0.5 + rng.NextDouble() * 1.5;
    mln += StrFormat("%.3f token(\"W%d\", p, c) => infield(p, \"F%d\", c)\n",
                     weight, w, f);
  }
  TUFFY_ASSIGN_OR_RETURN(ds.program, ParseProgram(mln));

  for (int f = 0; f < params.num_fields; ++f) {
    ds.program.symbols().Intern(StrFormat("F%d", f), "field");
  }
  for (int p = 0; p < params.positions_per_citation; ++p) {
    ds.program.symbols().Intern(StrFormat("Pos%d", p), "pos");
  }
  for (int p = 0; p + 1 < params.positions_per_citation; ++p) {
    TUFFY_RETURN_IF_ERROR(AddEvidence(
        &ds, "nextpos", {StrFormat("Pos%d", p), StrFormat("Pos%d", p + 1)}));
  }
  for (int c = 0; c < params.num_citations; ++c) {
    std::string cit = StrFormat("C%d", c);
    for (int p = 0; p < params.positions_per_citation; ++p) {
      int w = static_cast<int>(rng.Uniform(params.vocabulary));
      TUFFY_RETURN_IF_ERROR(AddEvidence(
          &ds, "token", {StrFormat("W%d", w), StrFormat("Pos%d", p), cit}));
    }
  }
  return ds;
}

// ------------------------------------------------------------------- LP

Result<Dataset> MakeLpDataset(const LpParams& params) {
  Dataset ds;
  ds.name = "LP";
  Rng rng(params.seed);

  std::string mln =
      "// Link prediction: student-adviser relationships\n"
      "*professor(person)\n"
      "*student(person)\n"
      "*publication(pub, person)\n"
      "*taughtBy(course, person, term)\n"
      "*ta(course, person, term)\n"
      "*coauthor(person, person)\n"
      "advisedBy(person, person)\n"
      "1.5 publication(pb, x), publication(pb, y), professor(x), "
      "student(y) => advisedBy(y, x)\n"
      "0.8 taughtBy(c, x, t), ta(c, y, t), professor(x), student(y) "
      "=> advisedBy(y, x)\n"
      "3 advisedBy(y, x1), advisedBy(y, x2) => x1 = x2\n"
      "0.4 advisedBy(y1, x), coauthor(y1, y2), student(y2) "
      "=> advisedBy(y2, x)\n"
      "-0.5 advisedBy(y, x)\n"
      "student(y) => EXIST x advisedBy(y, x).\n";
  TUFFY_ASSIGN_OR_RETURN(ds.program, ParseProgram(mln));

  std::vector<std::string> profs, students;
  for (int i = 0; i < params.num_professors; ++i) {
    profs.push_back(StrFormat("Prof%d", i));
    TUFFY_RETURN_IF_ERROR(AddEvidence(&ds, "professor", {profs.back()}));
  }
  for (int i = 0; i < params.num_students; ++i) {
    students.push_back(StrFormat("Stud%d", i));
    TUFFY_RETURN_IF_ERROR(AddEvidence(&ds, "student", {students.back()}));
  }
  for (int i = 0; i < params.num_publications; ++i) {
    std::string pub = StrFormat("Pub%d", i);
    const std::string& prof = profs[rng.Uniform(profs.size())];
    const std::string& stud = students[rng.Uniform(students.size())];
    TUFFY_RETURN_IF_ERROR(AddEvidence(&ds, "publication", {pub, prof}));
    TUFFY_RETURN_IF_ERROR(AddEvidence(&ds, "publication", {pub, stud}));
  }
  for (int i = 0; i < params.num_courses; ++i) {
    std::string course = StrFormat("Course%d", i);
    std::string term = StrFormat("T%d", static_cast<int>(rng.Uniform(4)));
    TUFFY_RETURN_IF_ERROR(AddEvidence(
        &ds, "taughtBy", {course, profs[rng.Uniform(profs.size())], term}));
    TUFFY_RETURN_IF_ERROR(AddEvidence(
        &ds, "ta", {course, students[rng.Uniform(students.size())], term}));
  }
  // A coauthor chain across all students guarantees a single component.
  for (size_t i = 0; i + 1 < students.size(); ++i) {
    TUFFY_RETURN_IF_ERROR(
        AddEvidence(&ds, "coauthor", {students[i], students[i + 1]}));
  }
  return ds;
}

// ------------------------------------------------------------------- ER

Result<Dataset> MakeErDataset(const ErParams& params) {
  Dataset ds;
  ds.name = "ER";
  Rng rng(params.seed);

  std::string mln =
      "// Entity resolution over citation records\n"
      "*simTitle(bib, bib)\n"
      "*simAuthor(bib, bib)\n"
      "*simVenue(bib, bib)\n"
      "sameBib(bib, bib)\n"
      "2 simTitle(b1, b2) => sameBib(b1, b2)\n"
      "1.5 simAuthor(b1, b2) => sameBib(b1, b2)\n"
      "0.8 simVenue(b1, b2) => sameBib(b1, b2)\n"
      "1 sameBib(x, y), sameBib(y, z) => sameBib(x, z)\n"
      "0.5 sameBib(x, y) => sameBib(y, x)\n"
      "-0.3 sameBib(b1, b2)\n";
  TUFFY_ASSIGN_OR_RETURN(ds.program, ParseProgram(mln));

  std::vector<int> entity_of(params.num_records);
  for (int r = 0; r < params.num_records; ++r) {
    entity_of[r] = static_cast<int>(rng.Uniform(params.num_entities));
    ds.program.symbols().Intern(StrFormat("B%d", r), "bib");
  }
  for (int a = 0; a < params.num_records; ++a) {
    for (int b = 0; b < params.num_records; ++b) {
      if (a == b) continue;
      bool dup = entity_of[a] == entity_of[b];
      std::string ra = StrFormat("B%d", a), rb = StrFormat("B%d", b);
      if (dup ? rng.NextDouble() < 0.8 : rng.NextDouble() < params.noise) {
        TUFFY_RETURN_IF_ERROR(AddEvidence(&ds, "simTitle", {ra, rb}));
      }
      if (dup ? rng.NextDouble() < 0.7 : rng.NextDouble() < params.noise) {
        TUFFY_RETURN_IF_ERROR(AddEvidence(&ds, "simAuthor", {ra, rb}));
      }
      if (dup ? rng.NextDouble() < 0.5
              : rng.NextDouble() < params.noise * 2) {
        TUFFY_RETURN_IF_ERROR(AddEvidence(&ds, "simVenue", {ra, rb}));
      }
    }
  }
  return ds;
}

// ------------------------------------------------------------- Example 1

std::vector<GroundClause> MakeExample1Mrf(int num_components) {
  std::vector<GroundClause> clauses;
  clauses.reserve(3 * num_components);
  for (int i = 0; i < num_components; ++i) {
    AtomId x = static_cast<AtomId>(2 * i);
    AtomId y = static_cast<AtomId>(2 * i + 1);
    GroundClause cx;
    cx.lits = {MakeLit(x, true)};
    cx.weight = 1.0;
    clauses.push_back(std::move(cx));
    GroundClause cy;
    cy.lits = {MakeLit(y, true)};
    cy.weight = 1.0;
    clauses.push_back(std::move(cy));
    GroundClause cxy;
    cxy.lits = {MakeLit(x, true), MakeLit(y, true)};
    cxy.weight = -1.0;
    clauses.push_back(std::move(cxy));
  }
  return clauses;
}

// ---------------------------------------------------- tractable fragment

std::vector<GroundClause> MakeTractableMrf(const TractableMrfParams& params,
                                           size_t* num_atoms_out) {
  Rng rng(params.seed);
  std::vector<GroundClause> clauses;
  size_t base = 0;
  // Dyadic weights (multiples of 1/8, in [1/8, 2]): FP sums of these are
  // exact in any order, so the oracle can assert cost equality.
  auto dyadic = [&rng](bool allow_negative, double negative_prob) {
    double w = static_cast<double>(rng.UniformInt(1, 16)) / 8.0;
    if (allow_negative && rng.Bernoulli(negative_prob)) w = -w;
    return w;
  };
  for (int comp = 0; comp < params.num_components; ++comp) {
    const int k =
        static_cast<int>(rng.UniformInt(params.min_atoms, params.max_atoms));
    // Hidden satisfying assignment: every hard clause below is adjusted
    // to be satisfied by it, so no component is hard-unsatisfiable and
    // hard-unit propagation can never derive a contradiction.
    std::vector<uint8_t> hidden(k);
    for (int j = 0; j < k; ++j) hidden[j] = rng.Bernoulli(0.5) ? 1 : 0;
    std::vector<int> parent(k, -1);

    auto add_binary = [&](int u, int v) {
      GroundClause c;
      bool su = rng.Bernoulli(0.5), sv = rng.Bernoulli(0.5);
      if (rng.Bernoulli(params.hard_prob)) {
        // Keep it satisfiable: if the hidden assignment misses both
        // literals, point the second one at it.
        if ((hidden[u] != 0) != su && (hidden[v] != 0) != sv) {
          sv = hidden[v] != 0;
        }
        c.hard = true;
      } else {
        c.weight = dyadic(true, params.negative_prob);
      }
      c.lits = {MakeLit(static_cast<AtomId>(base + u), su),
                MakeLit(static_cast<AtomId>(base + v), sv)};
      clauses.push_back(std::move(c));
    };

    for (int j = 1; j < k; ++j) {
      parent[j] = static_cast<int>(rng.UniformInt(0, j - 1));
      add_binary(parent[j], j);
      if (rng.Bernoulli(params.extra_pair_prob)) add_binary(parent[j], j);
    }
    for (int j = 0; j < k; ++j) {
      if (!rng.Bernoulli(params.unit_prob)) continue;
      GroundClause c;
      c.lits = {MakeLit(static_cast<AtomId>(base + j), rng.Bernoulli(0.5))};
      c.weight = dyadic(true, params.negative_prob);
      clauses.push_back(std::move(c));
    }
    if (k >= 3 && rng.Bernoulli(params.conditioned_prob)) {
      // Conditioned / TML-style case: a hard unit pins atom 0, and a
      // 3-literal clause whose atom-0 literal disagrees with the pinned
      // value shrinks to a binary clause over an existing tree edge.
      GroundClause unit;
      unit.lits = {MakeLit(static_cast<AtomId>(base), hidden[0] != 0)};
      unit.hard = true;
      clauses.push_back(std::move(unit));

      const int j = static_cast<int>(rng.UniformInt(1, k - 1));
      const int u = parent[j], v = j;
      GroundClause wide;
      bool su = rng.Bernoulli(0.5), sv = rng.Bernoulli(0.5);
      if (rng.Bernoulli(params.hard_prob)) {
        if ((hidden[u] != 0) != su && (hidden[v] != 0) != sv) {
          sv = hidden[v] != 0;
        }
        wide.hard = true;
      } else {
        wide.weight = dyadic(true, params.negative_prob);
      }
      wide.lits = {MakeLit(static_cast<AtomId>(base), hidden[0] == 0),
                   MakeLit(static_cast<AtomId>(base + u), su),
                   MakeLit(static_cast<AtomId>(base + v), sv)};
      clauses.push_back(std::move(wide));
    }
    base += static_cast<size_t>(k);
  }
  if (num_atoms_out != nullptr) *num_atoms_out = base;
  return clauses;
}

}  // namespace tuffy
