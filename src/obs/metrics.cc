#include "obs/metrics.h"

#include <cstdio>
#include <sstream>

namespace tuffy {

namespace {
std::atomic<bool> g_metrics_enabled{true};
std::atomic<size_t> g_next_shard{0};
}  // namespace

void SetMetricsEnabled(bool enabled) {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

bool MetricsEnabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

size_t Counter::ShardIndex() {
  // Round-robin shard assignment at first use per thread: spreads the
  // pool's workers across shards regardless of how the platform packs
  // thread ids.
  thread_local size_t shard =
      g_next_shard.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shard;
}

HistogramSnapshot HistogramSnapshot::operator-(
    const HistogramSnapshot& base) const {
  HistogramSnapshot out;
  for (int i = 0; i < kBuckets; ++i) {
    out.counts[i] = counts[i] - base.counts[i];
  }
  out.count = count - base.count;
  out.sum_seconds = sum_seconds - base.sum_seconds;
  return out;
}

double HistogramSnapshot::Percentile(double p) const {
  if (count == 0) return 0.0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  const uint64_t rank =
      static_cast<uint64_t>(p * static_cast<double>(count - 1)) + 1;
  uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += counts[b];
    if (seen >= rank) {
      // Interpolate within [2^b, 2^(b+1)) microseconds by the rank's
      // position inside this bucket's samples.
      const double lo = b == 0 ? 0.0 : static_cast<double>(uint64_t{1} << b);
      const double hi = static_cast<double>(uint64_t{1} << (b + 1));
      const uint64_t in_bucket = counts[b];
      const uint64_t before = seen - in_bucket;
      const double frac =
          in_bucket == 0
              ? 0.0
              : static_cast<double>(rank - before) /
                    static_cast<double>(in_bucket);
      return (lo + frac * (hi - lo)) * 1e-6;
    }
  }
  return static_cast<double>(uint64_t{1} << kBuckets) * 1e-6;
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  for (int i = 0; i < kBuckets; ++i) {
    snap.counts[i] = counts_[i].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum_seconds =
      static_cast<double>(sum_ns_.load(std::memory_order_relaxed)) * 1e-9;
  return snap;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::MetricsRegistry() {
  // Eagerly register the core serving-path catalog so a scrape (or the
  // CI grep over kMetrics output) always sees these series, even at
  // zero. Instrumentation sites still call Get* themselves; these calls
  // just pre-create the entries.
  for (const char* name : {
           "wal.append.count",
           "wal.append.bytes",
           "wal.fsync.count",
           "ground.delta.count",
           "ground.candidates",
           "ground.pruned.antijoin",
           "ground.maintenance.rows",
           "search.component.count",
           "search.flips",
           "search.exact.components",
           "search.exact.atoms",
           "search.exact.rejected",
           "serve.delta.count",
           "serve.request.count",
           "serve.error.count",
           "serve.overload.count",
           "storage.bufferpool.hits",
           "storage.bufferpool.misses",
           "storage.bufferpool.evictions",
       }) {
    GetCounter(name);
  }
  for (const char* name : {
           "threadpool.queue.depth",
           "net.queue.depth",
           "net.sessions.open",
       }) {
    GetGauge(name);
  }
  for (const char* name : {
           "serve.delta.seconds",
           "net.lane.queue.wait.seconds",
           "search.exact.seconds",
       }) {
    GetHistogram(name);
  }
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot.reset(new Counter());
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot.reset(new Gauge());
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot.reset(new Histogram());
  return slot.get();
}

std::vector<MetricSample> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSample> out;
  out.reserve(counters_.size() + gauges_.size() + 2 * histograms_.size());
  for (const auto& kv : counters_) {
    out.push_back({kv.first, static_cast<double>(kv.second->Value())});
  }
  for (const auto& kv : gauges_) {
    out.push_back({kv.first, static_cast<double>(kv.second->Value())});
  }
  for (const auto& kv : histograms_) {
    HistogramSnapshot snap = kv.second->Snapshot();
    out.push_back({kv.first + ".count", static_cast<double>(snap.count)});
    out.push_back({kv.first + ".sum_seconds", snap.sum_seconds});
  }
  return out;
}

namespace {
std::string FormatValue(double v) {
  char buf[64];
  // Counters and gauges are integral; render them without a fraction so
  // the exposition greps clean.
  if (v == static_cast<double>(static_cast<int64_t>(v))) {
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(static_cast<int64_t>(v)));
  } else {
    std::snprintf(buf, sizeof(buf), "%.9g", v);
  }
  return buf;
}
}  // namespace

std::string MetricsRegistry::RenderText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  for (const auto& kv : counters_) {
    out << "# TYPE " << kv.first << " counter\n";
    out << kv.first << ' ' << kv.second->Value() << '\n';
  }
  for (const auto& kv : gauges_) {
    out << "# TYPE " << kv.first << " gauge\n";
    out << kv.first << ' ' << kv.second->Value() << '\n';
  }
  for (const auto& kv : histograms_) {
    const HistogramSnapshot snap = kv.second->Snapshot();
    out << "# TYPE " << kv.first << " histogram\n";
    uint64_t cumulative = 0;
    for (int b = 0; b < HistogramSnapshot::kBuckets; ++b) {
      cumulative += snap.counts[b];
      // Skip empty leading/inner buckets except a few anchors to keep
      // the exposition small; always render buckets holding samples and
      // the final +Inf.
      if (snap.counts[b] == 0 && b != 0) continue;
      const double le = static_cast<double>(uint64_t{1} << (b + 1)) * 1e-6;
      out << kv.first << ".bucket{le=\"" << FormatValue(le) << "\"} "
          << cumulative << '\n';
    }
    out << kv.first << ".bucket{le=\"+Inf\"} " << snap.count << '\n';
    out << kv.first << ".count " << snap.count << '\n';
    out << kv.first << ".sum " << FormatValue(snap.sum_seconds) << '\n';
  }
  return out.str();
}

}  // namespace tuffy
