#ifndef TUFFY_OBS_TRACE_H_
#define TUFFY_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace tuffy {

/// Steady-clock nanoseconds, the time base for all spans. Matches the
/// steady_clock used by util/timer.h and the net server's
/// MonotonicSeconds so cross-layer timestamps compare directly.
inline uint64_t TraceNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// One timed section of a delta's lifecycle. Spans form a tree via
/// parent (index into the owning trace's span vector, -1 for roots).
struct Span {
  std::string name;
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;
  int32_t parent = -1;

  double seconds() const {
    return static_cast<double>(end_ns - start_ns) * 1e-9;
  }
};

/// A finished trace: the spans of one delta, from network enqueue to
/// reply (or just the session part when applied in-process).
struct DeltaTrace {
  uint64_t sequence = 0;   // session epoch or server-assigned id
  std::string session;
  std::vector<Span> spans;

  double total_seconds() const {
    return spans.empty() ? 0.0 : spans.front().seconds();
  }

  /// Render the span tree as indented text, one span per line:
  ///   apply_delta                         12.345 ms
  ///     wal.append                         0.210 ms
  ///     ground.delta                       1.002 ms
  /// Used by the slow-delta log and the kTrace wire reply.
  std::string Render() const;
};

/// Collects spans for one delta. Callers open spans with BeginSpan and
/// close them with EndSpan; AddSpan records an already-timed section
/// (used when the timing was captured in a plain array by pool workers
/// and converted after the join, or when the start predates the builder,
/// e.g. the net lane queue wait). A null TraceBuilder* everywhere means
/// tracing is off and every hook is a no-op branch — that, plus the fact
/// that the builder only reads clocks, is why trace on/off is
/// bit-identical for inference.
///
/// Not thread-safe: one builder belongs to the single thread applying
/// the delta. Pool workers never touch it.
class TraceBuilder {
 public:
  explicit TraceBuilder(std::string session_name = "")
      : session_(std::move(session_name)) {}

  /// Opens a span as a child of the innermost open span; returns its
  /// index for EndSpan.
  int BeginSpan(const std::string& name);
  void EndSpan(int index);

  /// Records a closed span with explicit bounds under the innermost open
  /// span (or as a root).
  int AddSpan(const std::string& name, uint64_t start_ns, uint64_t end_ns);

  /// Like AddSpan but with an explicit parent index — for spans whose
  /// parent is itself an already-closed AddSpan (e.g. a per-component
  /// marginal refresh under its component's span).
  int AddChildSpan(const std::string& name, uint64_t start_ns,
                   uint64_t end_ns, int parent);

  /// Moves the collected spans into a DeltaTrace.
  DeltaTrace Finish(uint64_t sequence);

  const std::vector<Span>& spans() const { return spans_; }

 private:
  std::string session_;
  std::vector<Span> spans_;
  std::vector<int> open_;  // stack of open span indices
};

/// RAII guard: BeginSpan on construction (when the builder is non-null),
/// EndSpan on destruction. The natural way to bracket a scope:
///   { ScopedSpan s(trace, "wal.append"); ... }
class ScopedSpan {
 public:
  ScopedSpan(TraceBuilder* builder, const char* name) : builder_(builder) {
    if (builder_ != nullptr) index_ = builder_->BeginSpan(name);
  }
  ~ScopedSpan() {
    if (builder_ != nullptr) builder_->EndSpan(index_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  TraceBuilder* builder_;
  int index_ = -1;
};

/// Bounded ring of the most recent finished traces for one session.
/// Push/snapshot are mutex-guarded: pushes come from whichever thread
/// applied the delta, reads from the kTrace wire path.
class TraceRing {
 public:
  explicit TraceRing(size_t capacity = 16) : capacity_(capacity) {}

  void Push(DeltaTrace trace);
  std::vector<DeltaTrace> Snapshot() const;
  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::deque<DeltaTrace> ring_;
};

}  // namespace tuffy

#endif  // TUFFY_OBS_TRACE_H_
