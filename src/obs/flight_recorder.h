#ifndef TUFFY_OBS_FLIGHT_RECORDER_H_
#define TUFFY_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace tuffy {

/// Fixed-size in-memory ring of recent observability events (finished
/// spans, applied deltas, notable metric changes). Cheap enough to leave
/// on in production serving: Record formats into a preallocated slot
/// claimed with one atomic increment — no locks, no allocation after
/// construction.
///
/// On a crash — a fatal signal, or the fault-injection kCrash path — the
/// ring is dumped oldest-first to stderr (and optionally to a file,
/// typically in the session's wal_dir) so the last moments before death
/// are visible post-mortem. The dump uses only write(2) on the ring's
/// own memory, so it is safe from the fault-point path and best-effort
/// safe from a signal handler.
class FlightRecorder {
 public:
  static constexpr size_t kSlots = 256;
  static constexpr size_t kMsgBytes = 120;

  static FlightRecorder& Global();

  /// Appends a message, truncating to kMsgBytes-1. Timestamped with
  /// steady-clock ns. Thread-safe, lock-free.
  void Record(const char* message);
  void Recordf(const char* format, ...)
      __attribute__((format(printf, 2, 3)));

  /// Writes the ring oldest-first to `fd` using raw write(2). When
  /// `include_metrics` is true also appends a registry snapshot —
  /// that path allocates and locks, so pass false from signal handlers.
  void Dump(int fd, bool include_metrics) const;

  /// Dumps to stderr and, if a dump path was configured, to that file
  /// too (created/truncated).
  void DumpAll(bool include_metrics) const;

  /// Sets the optional crash-dump file (e.g. "<wal_dir>/flight.log").
  /// Empty string disables the file dump. Not thread-safe with a
  /// concurrent crash dump; call during setup.
  void SetDumpPath(const std::string& path);

  size_t recorded() const {
    return next_.load(std::memory_order_relaxed);
  }

 private:
  FlightRecorder() = default;

  struct Slot {
    std::atomic<uint64_t> ns{0};
    char msg[kMsgBytes] = {};
  };

  Slot slots_[kSlots];
  std::atomic<uint64_t> next_{0};
  char dump_path_[256] = {};
};

/// Installs handlers for fatal signals (SIGSEGV, SIGBUS, SIGFPE,
/// SIGABRT, SIGILL) that dump the flight recorder to stderr (and the
/// configured dump file) before re-raising with default disposition.
/// Idempotent.
void InstallFlightRecorderCrashHandlers();

}  // namespace tuffy

#endif  // TUFFY_OBS_FLIGHT_RECORDER_H_
