#ifndef TUFFY_OBS_METRICS_H_
#define TUFFY_OBS_METRICS_H_

#include <atomic>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace tuffy {

/// Process-wide observability kill switch. Off, every Counter::Add /
/// Gauge::Set / Histogram::Record is a relaxed load and a not-taken
/// branch — the hook stays in the binary but records nothing, which is
/// what makes the "metrics on vs off is bit-identical and <5% latency"
/// invariant cheap to enforce (bench_serving's obs lesion measures it).
/// Instrumentation never feeds back into inference: it reads clocks and
/// bumps atomics, so results are bit-identical either way.
void SetMetricsEnabled(bool enabled);
bool MetricsEnabled();

/// Monotonically increasing counter with sharded atomic cells: each
/// thread hashes to one of kShards cache-line-padded atomics, so
/// concurrent Add() calls from the worker pool do not bounce one cache
/// line around. Value() sums the shards — exact, because every Add lands
/// in exactly one shard (the concurrent-exactness test pins this down).
class Counter {
 public:
  static constexpr size_t kShards = 8;

  void Add(uint64_t delta = 1) {
    if (!MetricsEnabled()) return;
    shards_[ShardIndex()].cell.fetch_add(delta, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.cell.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> cell{0};
  };

  static size_t ShardIndex();

  Shard shards_[kShards];
};

/// Last-writer-wins instantaneous value (queue depths, open connection
/// counts). Writers are usually a single owner thread; the atomic is for
/// the readers.
class Gauge {
 public:
  void Set(int64_t value) {
    if (!MetricsEnabled()) return;
    value_.store(value, std::memory_order_relaxed);
  }
  /// Tracks a high-water mark alongside Set for peak gauges.
  void SetMax(int64_t value) {
    if (!MetricsEnabled()) return;
    int64_t prev = value_.load(std::memory_order_relaxed);
    while (prev < value &&
           !value_.compare_exchange_weak(prev, value,
                                         std::memory_order_relaxed)) {
    }
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Point-in-time copy of a histogram's buckets. Subtractable, so a
/// consumer that wants "what happened since my baseline" (the net
/// server's per-instance metrics over the process-global registry)
/// snapshots at start and diffs.
struct HistogramSnapshot {
  static constexpr int kBuckets = 44;
  uint64_t counts[kBuckets] = {};
  uint64_t count = 0;
  double sum_seconds = 0.0;

  HistogramSnapshot operator-(const HistogramSnapshot& base) const;

  /// Value at quantile `p` in [0, 1], in seconds (0 when empty), with
  /// log-linear interpolation inside the hit power-of-two bucket — the
  /// error is bounded by the bucket's 2x width.
  double Percentile(double p) const;
  double mean_seconds() const {
    return count == 0 ? 0.0 : sum_seconds / static_cast<double>(count);
  }
};

/// Fixed-bucket latency histogram over power-of-two microsecond buckets
/// (bucket i holds [2^i, 2^(i+1)) us; bucket 0 also catches
/// sub-microsecond samples; 44 buckets cover ~5 hours), with atomic
/// cells so Record is lock-free from any thread. This replaces the
/// former util/histogram.h LatencyHistogram, whose instances had to be
/// guarded by their owner's mutex.
class Histogram {
 public:
  static constexpr int kBuckets = HistogramSnapshot::kBuckets;

  void Record(double seconds) {
    if (!MetricsEnabled()) return;
    RecordAlways(seconds);
  }

  /// Record without the enable gate, for callers using Histogram as a
  /// plain local accumulator (benches) rather than a registry metric.
  void RecordAlways(double seconds) {
    const double micros = seconds * 1e6;
    int b = 0;
    if (micros >= 1.0) {
      uint64_t m = static_cast<uint64_t>(micros);
      while (m >>= 1) ++b;
      if (b >= kBuckets) b = kBuckets - 1;
    }
    counts_[b].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    // Sum as fixed-point nanoseconds: doubles have no atomic fetch_add
    // pre-C++20-on-all-targets, and nanosecond granularity loses nothing
    // at metric precision.
    sum_ns_.fetch_add(static_cast<uint64_t>(seconds * 1e9),
                      std::memory_order_relaxed);
  }

  HistogramSnapshot Snapshot() const;

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double Percentile(double p) const { return Snapshot().Percentile(p); }
  double mean_seconds() const { return Snapshot().mean_seconds(); }

 private:
  std::atomic<uint64_t> counts_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_ns_{0};
};

/// One rendered/snapshotted metric (counters and gauges; histograms
/// export through RenderText and GetHistogram).
struct MetricSample {
  std::string name;
  double value = 0.0;
};

/// Process-wide registry of named metrics. Names are stable dotted paths
/// ("wal.fsync.count", "serve.delta.seconds"); the catalog lives in
/// docs/OBSERVABILITY.md. Get* registers on first use and returns a
/// pointer that stays valid for the process lifetime — instrumentation
/// sites cache it in a function-local static, so the hot path never
/// touches the registry mutex. The core serving-path names are
/// registered eagerly at construction so a scrape always sees the full
/// catalog (at zero) rather than only the series that happened to fire.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Every counter and gauge as (name, value), sorted by name, plus
  /// histograms contributing <name>.count and <name>.sum_seconds. The
  /// flight recorder and bench stamping read this.
  std::vector<MetricSample> Snapshot() const;

  /// Prometheus-style text exposition: "# TYPE" comment lines, one
  /// "<name> <value>" sample per counter/gauge, and per histogram the
  /// cumulative buckets '<name>.bucket{le="<seconds>"} <count>' plus
  /// <name>.count / <name>.sum. Dotted metric names are kept verbatim —
  /// a relabeling scrape config can map them to underscore form.
  std::string RenderText() const;

 private:
  mutable std::mutex mu_;
  // std::map: deterministic name order in RenderText/Snapshot.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace tuffy

#endif  // TUFFY_OBS_METRICS_H_
