#include "obs/flight_recorder.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <cstdarg>
#include <cstdio>
#include <cstring>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace tuffy {

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

void FlightRecorder::Record(const char* message) {
  if (!MetricsEnabled()) return;
  const uint64_t seq = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[seq % kSlots];
  // Mark the slot as being rewritten so a concurrent Dump skips a
  // half-written message rather than printing garbage.
  slot.ns.store(0, std::memory_order_release);
  std::strncpy(slot.msg, message, kMsgBytes - 1);
  slot.msg[kMsgBytes - 1] = '\0';
  slot.ns.store(TraceNowNs(), std::memory_order_release);
}

void FlightRecorder::Recordf(const char* format, ...) {
  if (!MetricsEnabled()) return;
  char buf[kMsgBytes];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof(buf), format, args);
  va_end(args);
  Record(buf);
}

namespace {
void WriteAll(int fd, const char* data, size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n <= 0) return;
    data += n;
    len -= static_cast<size_t>(n);
  }
}
}  // namespace

void FlightRecorder::Dump(int fd, bool include_metrics) const {
  const uint64_t total = next_.load(std::memory_order_relaxed);
  char header[96];
  int hn = std::snprintf(header, sizeof(header),
                         "--- flight recorder (%llu events, last %zu) ---\n",
                         static_cast<unsigned long long>(total),
                         total < kSlots ? static_cast<size_t>(total) : kSlots);
  WriteAll(fd, header, static_cast<size_t>(hn));
  const uint64_t begin = total > kSlots ? total - kSlots : 0;
  for (uint64_t seq = begin; seq < total; ++seq) {
    const Slot& slot = slots_[seq % kSlots];
    const uint64_t ns = slot.ns.load(std::memory_order_acquire);
    if (ns == 0) continue;  // being rewritten right now
    char line[kMsgBytes + 48];
    const int n = std::snprintf(line, sizeof(line), "[%12.6f] %s\n",
                                static_cast<double>(ns) * 1e-9, slot.msg);
    WriteAll(fd, line, static_cast<size_t>(n));
  }
  if (include_metrics) {
    // Renders through the registry (locks + allocates); only reachable
    // from non-signal crash paths such as fault-injection kCrash.
    const std::string text = MetricsRegistry::Global().RenderText();
    WriteAll(fd, "--- metrics at crash ---\n", 25);
    WriteAll(fd, text.data(), text.size());
  }
  WriteAll(fd, "--- end flight recorder ---\n", 28);
}

void FlightRecorder::DumpAll(bool include_metrics) const {
  Dump(STDERR_FILENO, include_metrics);
  if (dump_path_[0] != '\0') {
    const int fd = ::open(dump_path_, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      Dump(fd, include_metrics);
      ::close(fd);
    }
  }
}

void FlightRecorder::SetDumpPath(const std::string& path) {
  std::strncpy(dump_path_, path.c_str(), sizeof(dump_path_) - 1);
  dump_path_[sizeof(dump_path_) - 1] = '\0';
}

namespace {

void CrashSignalHandler(int sig) {
  // Restore default disposition first so a second fault during the dump
  // terminates instead of recursing.
  ::signal(sig, SIG_DFL);
  char line[64];
  const int n = std::snprintf(line, sizeof(line),
                              "fatal signal %d — dumping flight recorder\n",
                              sig);
  WriteAll(STDERR_FILENO, line, static_cast<size_t>(n));
  // No registry snapshot from a signal handler: RenderText locks and
  // allocates. The event ring dump below only touches our own memory.
  FlightRecorder::Global().DumpAll(/*include_metrics=*/false);
  ::raise(sig);
}

}  // namespace

void InstallFlightRecorderCrashHandlers() {
  static bool installed = false;
  if (installed) return;
  installed = true;
  for (int sig : {SIGSEGV, SIGBUS, SIGFPE, SIGABRT, SIGILL}) {
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = CrashSignalHandler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESETHAND;
    ::sigaction(sig, &sa, nullptr);
  }
}

}  // namespace tuffy
