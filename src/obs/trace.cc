#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace tuffy {

std::string DeltaTrace::Render() const {
  // Depth via parent chain; spans are appended in begin order, so a
  // parent always precedes its children and one forward pass suffices.
  std::vector<int> depth(spans.size(), 0);
  for (size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].parent >= 0) depth[i] = depth[spans[i].parent] + 1;
  }
  std::ostringstream out;
  if (!session.empty()) {
    out << "delta trace session=" << session << " seq=" << sequence << '\n';
  }
  for (size_t i = 0; i < spans.size(); ++i) {
    for (int d = 0; d < depth[i]; ++d) out << "  ";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", spans[i].seconds() * 1e3);
    out << spans[i].name << "  " << buf << " ms\n";
  }
  return out.str();
}

int TraceBuilder::BeginSpan(const std::string& name) {
  Span span;
  span.name = name;
  span.start_ns = TraceNowNs();
  span.parent = open_.empty() ? -1 : open_.back();
  const int index = static_cast<int>(spans_.size());
  spans_.push_back(std::move(span));
  open_.push_back(index);
  return index;
}

void TraceBuilder::EndSpan(int index) {
  if (index < 0 || index >= static_cast<int>(spans_.size())) return;
  spans_[index].end_ns = TraceNowNs();
  // Pop back to (and including) this span; tolerates a caller that
  // forgot to end an inner span.
  while (!open_.empty()) {
    const int top = open_.back();
    open_.pop_back();
    if (top == index) break;
    if (spans_[top].end_ns == 0) spans_[top].end_ns = spans_[index].end_ns;
  }
}

int TraceBuilder::AddSpan(const std::string& name, uint64_t start_ns,
                          uint64_t end_ns) {
  return AddChildSpan(name, start_ns, end_ns,
                      open_.empty() ? -1 : open_.back());
}

int TraceBuilder::AddChildSpan(const std::string& name, uint64_t start_ns,
                               uint64_t end_ns, int parent) {
  Span span;
  span.name = name;
  span.start_ns = start_ns;
  span.end_ns = std::max(start_ns, end_ns);
  span.parent = parent;
  spans_.push_back(std::move(span));
  return static_cast<int>(spans_.size()) - 1;
}

DeltaTrace TraceBuilder::Finish(uint64_t sequence) {
  // Close any spans left open so the rendered tree never shows a
  // zero-end span.
  const uint64_t now = TraceNowNs();
  for (int index : open_) {
    if (spans_[index].end_ns == 0) spans_[index].end_ns = now;
  }
  open_.clear();
  DeltaTrace trace;
  trace.sequence = sequence;
  trace.session = session_;
  trace.spans = std::move(spans_);
  spans_.clear();
  return trace;
}

void TraceRing::Push(DeltaTrace trace) {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.push_back(std::move(trace));
  while (ring_.size() > capacity_) ring_.pop_front();
}

std::vector<DeltaTrace> TraceRing::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<DeltaTrace>(ring_.begin(), ring_.end());
}

}  // namespace tuffy
