#include "repl/repl_source.h"

#include <algorithm>

#include "durability/snapshot.h"
#include "net/protocol.h"
#include "obs/metrics.h"
#include "repl/repl_protocol.h"
#include "serve/inference_session.h"
#include "util/fault_points.h"
#include "util/string_util.h"

namespace tuffy {

Result<std::unique_ptr<ReplSource>> ReplSource::Create(
    std::string session, const std::string& wal_dir,
    uint64_t subscriber_position, bool subscriber_has_state,
    uint64_t committed, ReplSourceOptions opts) {
  std::unique_ptr<ReplSource> src(
      new ReplSource(std::move(session), opts));
  TUFFY_ASSIGN_OR_RETURN(src->tailer_, WalTailer::Open(wal_dir + "/wal.log"));

  // Record 0 is the header: it carries the log's retained-prefix base.
  std::vector<std::string> header;
  TUFFY_ASSIGN_OR_RETURN(uint64_t got, src->tailer_->ReadRecords(1, &header));
  if (got != 1) {
    return Status::Corruption("wal at " + wal_dir + " has no header record");
  }
  WalHeaderInfo hdr;
  TUFFY_RETURN_IF_ERROR(ParseWalHeader(header[0], &hdr));
  src->base_ = hdr.base_records;

  if (subscriber_has_state && subscriber_position > committed) {
    return Status::InvalidArgument(StrFormat(
        "subscriber claims position %llu but the primary has committed "
        "only %llu — refusing a stream that would run history backwards",
        (unsigned long long)subscriber_position,
        (unsigned long long)committed));
  }

  if (!subscriber_has_state || subscriber_position < src->base_) {
    // Cold (or behind the retained prefix): stage the newest intact
    // snapshot, falling back to older ones exactly like recovery does.
    TUFFY_ASSIGN_OR_RETURN(std::vector<SnapshotRef> snaps,
                           ListSnapshots(wal_dir));
    uint64_t snap_seq = 0;
    std::string payload;
    bool found = false;
    for (const SnapshotRef& ref : snaps) {
      Result<std::string> read = ReadSnapshotFile(ref.path);
      if (read.ok()) {
        payload = read.TakeValue();
        snap_seq = ref.seq;
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::Corruption("no intact snapshot in " + wal_dir +
                                " to bootstrap a cold follower from");
    }
    TUFFY_RETURN_IF_ERROR(RebaseSnapshotPayloadForShipping(&payload));
    src->snapshot_ = std::move(payload);
    src->snapshot_pos_ = src->base_ + snap_seq;
    TUFFY_ASSIGN_OR_RETURN(uint64_t skipped,
                           src->tailer_->SkipRecords(snap_seq));
    if (skipped != snap_seq) {
      return Status::Corruption(StrFormat(
          "wal in %s holds %llu records but snapshot claims %llu",
          wal_dir.c_str(), (unsigned long long)skipped,
          (unsigned long long)snap_seq));
    }
    src->next_ = src->snapshot_pos_;
  } else {
    const uint64_t skip = subscriber_position - src->base_;
    TUFFY_ASSIGN_OR_RETURN(uint64_t skipped,
                           src->tailer_->SkipRecords(skip));
    if (skipped != skip) {
      return Status::Corruption(StrFormat(
          "subscriber position %llu exceeds the %llu records on disk",
          (unsigned long long)subscriber_position,
          (unsigned long long)(src->base_ + skipped)));
    }
    src->next_ = subscriber_position;
  }
  src->acked_ = src->next_;
  return src;
}

Result<size_t> ReplSource::Pump(uint64_t committed, double now,
                                std::vector<std::string>* frames, bool* cut) {
  *cut = false;
  size_t appended = 0;

  static Counter* snap_bytes =
      MetricsRegistry::Global().GetCounter("repl.snapshot.bytes.shipped");
  static Counter* shipped_records =
      MetricsRegistry::Global().GetCounter("repl.records.shipped");

  while (snapshot_off_ < snapshot_.size()) {
    ReplSnapshotChunk chunk;
    chunk.offset = snapshot_off_;
    chunk.position = snapshot_pos_;
    const size_t n =
        std::min(opts_.snapshot_chunk_bytes, snapshot_.size() - snapshot_off_);
    chunk.bytes = snapshot_.substr(snapshot_off_, n);
    snapshot_off_ += n;
    chunk.last = snapshot_off_ == snapshot_.size();
    frames->push_back(EncodeFrame(EncodeReplSnapshotChunk(chunk)));
    snap_bytes->Add(n);
    ++appended;
  }

  while (next_ < committed) {
    const uint64_t want =
        std::min(opts_.max_batch_records, committed - next_);
    ReplWalRecords batch;
    TUFFY_ASSIGN_OR_RETURN(uint64_t got,
                           tailer_->ReadRecords(want, &batch.records));
    if (got == 0) break;  // bytes not settled yet; next pump retries
    batch.first = next_ + 1;
    batch.committed = committed;
    std::string frame = EncodeFrame(EncodeReplWalRecords(batch));
    if (FaultPoints::Global().Hit("repl.ship.mid_record") !=
        FaultAction::kNone) {
      // Deliver only half the frame, then have the caller cut the
      // connection: the follower sees a torn frame mid-record, exactly
      // like a primary dying mid-send.
      frame.resize(frame.size() / 2);
      frames->push_back(std::move(frame));
      ++appended;
      *cut = true;
      return appended;
    }
    next_ += got;
    shipped_records->Add(got);
    if (next_ > acked_ && oldest_unacked_since_ == 0.0) {
      oldest_unacked_since_ = now;
    }
    frames->push_back(std::move(frame));
    ++appended;
  }
  return appended;
}

std::string ReplSource::HeartbeatFrame(uint64_t committed) const {
  ReplWalRecords hb;
  hb.first = next_ + 1;
  hb.committed = committed;
  return EncodeFrame(EncodeReplWalRecords(hb));
}

void ReplSource::RecordAck(uint64_t position) {
  acked_ = std::max(acked_, position);
  if (acked_ >= next_) oldest_unacked_since_ = 0.0;
}

}  // namespace tuffy
