#ifndef TUFFY_REPL_REPL_PROTOCOL_H_
#define TUFFY_REPL_REPL_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "net/protocol.h"
#include "util/result.h"

namespace tuffy {

/// Message bodies of the replication stream (docs/DURABILITY.md,
/// "Replication & failover"). They ride the same crc-framed codec as the
/// request/response protocol and keep its [u8 tag][u64 request id]
/// payload prefix, but after the kSubscribe handshake the connection
/// stops being request/response: the primary pushes kSnapshotChunk /
/// kWalRecords frames unsolicited (request id 0), and the follower's
/// kReplAck is one-way.
///
/// Positions are primary-timeline record counts: "position N" means the
/// state after applying the primary's first N delta records. A follower
/// whose local log was bootstrapped from a shipped snapshot reports
/// wal_base() + wal_records() (see WalHeaderInfo::base_records).

/// Follower -> primary: join the stream for `session`.
struct ReplSubscribe {
  uint64_t request_id = 0;
  std::string session;
  /// Last applied primary-timeline position; meaningful only with
  /// has_state. A cold follower (has_state = false) always receives a
  /// snapshot first.
  uint64_t position = 0;
  bool has_state = false;
};

/// Primary -> follower: handshake outcome. After this, pushes follow.
struct ReplSubscribeReply {
  uint64_t request_id = 0;
  /// Primary's committed position at handshake time.
  uint64_t committed = 0;
  /// True when kSnapshotChunk frames precede the WAL records (cold
  /// follower, or one behind the log's retained prefix).
  bool snapshot = false;
  /// Position the shipped snapshot lands the follower on.
  uint64_t snapshot_position = 0;
  uint64_t snapshot_bytes = 0;
};

/// Primary -> follower: one slice of the bootstrap snapshot payload.
struct ReplSnapshotChunk {
  /// Byte offset of this slice in the (rebased) snapshot payload; the
  /// follower requires contiguity and drops the connection otherwise.
  uint64_t offset = 0;
  std::string bytes;
  bool last = false;
  /// Snapshot position (echoes ReplSubscribeReply::snapshot_position).
  uint64_t position = 0;
};

/// Primary -> follower: a batch of committed WAL record payloads,
/// verbatim. An empty batch is the heartbeat — it still carries the
/// primary's committed position, so an idle follower can track lag.
struct ReplWalRecords {
  /// Primary-timeline position of records[0] (first record = position
  /// `first`, i.e. the follower must be at first - 1 to apply it).
  uint64_t first = 0;
  uint64_t committed = 0;
  std::vector<std::string> records;
};

/// Follower -> primary: applied (and locally logged) through `position`.
struct ReplAck {
  std::string session;
  uint64_t position = 0;
};

std::string EncodeReplSubscribe(const ReplSubscribe& msg);
std::string EncodeReplSubscribeReply(const ReplSubscribeReply& msg);
std::string EncodeReplSnapshotChunk(const ReplSnapshotChunk& msg);
std::string EncodeReplWalRecords(const ReplWalRecords& msg);
std::string EncodeReplAck(const ReplAck& msg);

Result<ReplSubscribe> DecodeReplSubscribe(const std::string& payload);
Result<ReplSubscribeReply> DecodeReplSubscribeReply(
    const std::string& payload);
Result<ReplSnapshotChunk> DecodeReplSnapshotChunk(const std::string& payload);
Result<ReplWalRecords> DecodeReplWalRecords(const std::string& payload);
Result<ReplAck> DecodeReplAck(const std::string& payload);

}  // namespace tuffy

#endif  // TUFFY_REPL_REPL_PROTOCOL_H_
