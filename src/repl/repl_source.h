#ifndef TUFFY_REPL_REPL_SOURCE_H_
#define TUFFY_REPL_REPL_SOURCE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "durability/wal_tailer.h"
#include "util/result.h"
#include "util/status.h"

namespace tuffy {

struct ReplSourceOptions {
  /// Bootstrap snapshots ship in slices of this size so one cold
  /// follower cannot wedge the event loop behind a single giant frame.
  size_t snapshot_chunk_bytes = 256 * 1024;
  /// Upper bound on records per kWalRecords frame.
  uint64_t max_batch_records = 64;
};

/// Primary-side shipping state of one subscription: a WAL tailer over
/// the session's log plus the follower's shipped/acked positions. Owned
/// and driven entirely by the server's event loop (no locking): the
/// loop calls Pump after each committed delta and on the heartbeat tick,
/// and feeds acks to RecordAck.
///
/// Reading the session's files while the session runs is safe by the
/// durability layer's own discipline: the tailer stops before any
/// in-progress append (and is bounded by the committed position anyway),
/// and snapshots are published by atomic rename, so a concurrent
/// candidate is either fully there or absent — the same contract
/// recovery relies on.
class ReplSource {
 public:
  /// Sizes up the subscriber: a cold one (or one behind the log's
  /// retained prefix, position < header base_records) gets the newest
  /// intact snapshot staged for shipping; a warm one gets the tailer
  /// fast-forwarded to its position. `committed` is the session's
  /// current committed position (primary timeline); a subscriber
  /// claiming to be ahead of it is refused (split brain).
  static Result<std::unique_ptr<ReplSource>> Create(
      std::string session, const std::string& wal_dir,
      uint64_t subscriber_position, bool subscriber_has_state,
      uint64_t committed, ReplSourceOptions opts = ReplSourceOptions{});

  /// True while bootstrap snapshot chunks remain to be shipped.
  bool snapshot_pending() const { return snapshot_off_ < snapshot_.size(); }
  bool ships_snapshot() const { return !snapshot_.empty(); }
  uint64_t snapshot_position() const { return snapshot_pos_; }
  uint64_t snapshot_bytes() const { return snapshot_.size(); }

  /// Appends ready-to-send frames: pending snapshot chunks first, then
  /// batches of WAL records up to `committed`. `now` feeds the
  /// unacked-age clock. Sets *cut when an armed repl.ship.mid_record
  /// fault truncated the last frame — the caller must flush what it got
  /// and then drop the connection, simulating a stream cut mid-record.
  /// Returns the number of frames appended.
  Result<size_t> Pump(uint64_t committed, double now,
                      std::vector<std::string>* frames, bool* cut);

  /// Framed empty kWalRecords carrying the committed position.
  std::string HeartbeatFrame(uint64_t committed) const;

  const std::string& session() const { return session_; }
  /// Primary-timeline position shipped so far (next record is next_ + 1).
  uint64_t shipped() const { return next_; }
  uint64_t acked() const { return acked_; }
  /// 0 when the follower has acked everything shipped; otherwise the
  /// `now` at which the oldest currently-unacked record was shipped.
  double oldest_unacked_since() const { return oldest_unacked_since_; }
  void RecordAck(uint64_t position);

 private:
  ReplSource(std::string session, ReplSourceOptions opts)
      : session_(std::move(session)), opts_(opts) {}

  std::string session_;
  ReplSourceOptions opts_;
  std::unique_ptr<WalTailer> tailer_;
  /// Header base_records of the primary's own log (nonzero only when
  /// the primary is itself a promoted follower).
  uint64_t base_ = 0;
  uint64_t next_ = 0;   // primary-timeline position shipped so far
  uint64_t acked_ = 0;
  double oldest_unacked_since_ = 0.0;

  /// Staged bootstrap snapshot (rebased payload); drained by Pump.
  std::string snapshot_;
  size_t snapshot_off_ = 0;
  uint64_t snapshot_pos_ = 0;
};

}  // namespace tuffy

#endif  // TUFFY_REPL_REPL_SOURCE_H_
