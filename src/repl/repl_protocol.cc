#include "repl/repl_protocol.h"

#include "durability/serialize.h"

namespace tuffy {

namespace {

void PutStr(BinaryWriter* w, const std::string& s) {
  w->U32(static_cast<uint32_t>(s.size()));
  w->Bytes(s.data(), s.size());
}

std::string GetStr(BinaryReader* r) {
  uint32_t n = r->U32();
  if (n > r->remaining()) {  // forged length: never sizes an allocation
    r->Invalidate();
    return std::string();
  }
  std::string s(n, '\0');
  if (n > 0) r->Bytes(s.data(), n);
  return s;
}

void PutHeader(BinaryWriter* w, MsgType tag, uint64_t request_id) {
  w->U8(static_cast<uint8_t>(tag));
  w->U64(request_id);
}

/// Validates the tag and returns the request id, invalidating on
/// mismatch.
uint64_t GetHeader(BinaryReader* r, MsgType expected) {
  if (r->U8() != static_cast<uint8_t>(expected)) r->Invalidate();
  return r->U64();
}

Status Malformed(const char* what) {
  return Status::InvalidArgument(std::string("malformed ") + what +
                                 " payload");
}

}  // namespace

std::string EncodeReplSubscribe(const ReplSubscribe& msg) {
  BinaryWriter w;
  PutHeader(&w, MsgType::kSubscribe, msg.request_id);
  PutStr(&w, msg.session);
  w.U64(msg.position);
  w.U8(msg.has_state ? 1 : 0);
  return w.Take();
}

Result<ReplSubscribe> DecodeReplSubscribe(const std::string& payload) {
  BinaryReader r(payload);
  ReplSubscribe msg;
  msg.request_id = GetHeader(&r, MsgType::kSubscribe);
  msg.session = GetStr(&r);
  msg.position = r.U64();
  msg.has_state = r.U8() != 0;
  if (!r.ok() || !r.Exhausted()) return Malformed("kSubscribe");
  return msg;
}

std::string EncodeReplSubscribeReply(const ReplSubscribeReply& msg) {
  BinaryWriter w;
  PutHeader(&w, MsgType::kSubscribeReply, msg.request_id);
  w.U64(msg.committed);
  w.U8(msg.snapshot ? 1 : 0);
  w.U64(msg.snapshot_position);
  w.U64(msg.snapshot_bytes);
  return w.Take();
}

Result<ReplSubscribeReply> DecodeReplSubscribeReply(
    const std::string& payload) {
  BinaryReader r(payload);
  ReplSubscribeReply msg;
  msg.request_id = GetHeader(&r, MsgType::kSubscribeReply);
  msg.committed = r.U64();
  msg.snapshot = r.U8() != 0;
  msg.snapshot_position = r.U64();
  msg.snapshot_bytes = r.U64();
  if (!r.ok() || !r.Exhausted()) return Malformed("kSubscribeReply");
  return msg;
}

std::string EncodeReplSnapshotChunk(const ReplSnapshotChunk& msg) {
  BinaryWriter w;
  PutHeader(&w, MsgType::kSnapshotChunk, 0);
  w.U64(msg.offset);
  w.U64(msg.position);
  w.U8(msg.last ? 1 : 0);
  PutStr(&w, msg.bytes);
  return w.Take();
}

Result<ReplSnapshotChunk> DecodeReplSnapshotChunk(
    const std::string& payload) {
  BinaryReader r(payload);
  ReplSnapshotChunk msg;
  GetHeader(&r, MsgType::kSnapshotChunk);
  msg.offset = r.U64();
  msg.position = r.U64();
  msg.last = r.U8() != 0;
  msg.bytes = GetStr(&r);
  if (!r.ok() || !r.Exhausted()) return Malformed("kSnapshotChunk");
  return msg;
}

std::string EncodeReplWalRecords(const ReplWalRecords& msg) {
  BinaryWriter w;
  PutHeader(&w, MsgType::kWalRecords, 0);
  w.U64(msg.first);
  w.U64(msg.committed);
  w.U32(static_cast<uint32_t>(msg.records.size()));
  for (const std::string& rec : msg.records) PutStr(&w, rec);
  return w.Take();
}

Result<ReplWalRecords> DecodeReplWalRecords(const std::string& payload) {
  BinaryReader r(payload);
  ReplWalRecords msg;
  GetHeader(&r, MsgType::kWalRecords);
  msg.first = r.U64();
  msg.committed = r.U64();
  const uint32_t n = r.U32();
  if (!r.ok() || n > r.remaining()) return Malformed("kWalRecords");
  msg.records.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    msg.records.push_back(GetStr(&r));
    if (!r.ok()) return Malformed("kWalRecords");
  }
  if (!r.ok() || !r.Exhausted()) return Malformed("kWalRecords");
  return msg;
}

std::string EncodeReplAck(const ReplAck& msg) {
  BinaryWriter w;
  PutHeader(&w, MsgType::kReplAck, 0);
  PutStr(&w, msg.session);
  w.U64(msg.position);
  return w.Take();
}

Result<ReplAck> DecodeReplAck(const std::string& payload) {
  BinaryReader r(payload);
  ReplAck msg;
  GetHeader(&r, MsgType::kReplAck);
  msg.session = GetStr(&r);
  msg.position = r.U64();
  if (!r.ok() || !r.Exhausted()) return Malformed("kReplAck");
  return msg;
}

}  // namespace tuffy
