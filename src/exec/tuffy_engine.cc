#include "exec/tuffy_engine.h"

#include <algorithm>
#include <cmath>

#include "exec/clause_warehouse.h"
#include "ground/bottom_up_grounder.h"
#include "ground/top_down_grounder.h"
#include "infer/component_walksat.h"
#include "infer/disk_walksat.h"
#include "infer/exact/exact_solver.h"
#include "infer/gauss_seidel.h"
#include "infer/mcsat.h"
#include "mrf/bin_packing.h"
#include "mrf/components.h"
#include "mrf/partitioner.h"
#include "util/mem_tracker.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace tuffy {

namespace {
/// Bytes of in-memory search state per size-metric unit (an atom or a
/// literal), derived from the flat CSR layout: a literal costs 4B in the
/// arena's lit_data plus a 16B occurrence entry; an atom costs a truth
/// byte, an 8B cached flip delta, and a 4B occurrence offset; per-clause
/// overhead (arena offset + weight + abs_weight + flags, ClauseState,
/// violated bookkeeping ≈ 39B) is amortized over the clause's literals.
/// The worst case (all unit clauses, where one clause amortizes over a
/// single literal and the size metric charges 2 units) works out to
/// (13 + 20 + 39) / 2 = 36 bytes/unit; 40 leaves headroom so the
/// memory_budget partitioning never under-provisions.
constexpr uint64_t kBytesPerSizeUnit = 40;
}  // namespace

Status ValidateEngineOptions(const EngineOptions& options) {
  if (options.mcsat_samples <= 0) {
    return Status::InvalidArgument(StrFormat(
        "mcsat_samples must be positive, got %d", options.mcsat_samples));
  }
  if (options.mcsat_burn_in < 0) {
    return Status::InvalidArgument(StrFormat(
        "mcsat_burn_in must be non-negative, got %d", options.mcsat_burn_in));
  }
  if (options.p_random < 0.0 || options.p_random > 1.0) {
    return Status::InvalidArgument(
        StrFormat("p_random must be in [0, 1], got %g", options.p_random));
  }
  if (!(options.hard_weight > 0.0)) {
    return Status::InvalidArgument(StrFormat(
        "hard_weight must be positive, got %g", options.hard_weight));
  }
  if (options.rounds <= 0) {
    return Status::InvalidArgument(
        StrFormat("rounds must be positive, got %d", options.rounds));
  }
  if (options.num_threads <= 0) {
    return Status::InvalidArgument(StrFormat(
        "num_threads must be positive, got %d", options.num_threads));
  }
  if (std::isnan(options.timeout_seconds) || options.timeout_seconds < 0.0) {
    return Status::InvalidArgument(StrFormat(
        "timeout_seconds must be non-negative, got %g",
        options.timeout_seconds));
  }
  return Status::OK();
}

Status TuffyEngine::RunSearch(EngineResult* result) {
  const std::vector<GroundClause>& clauses =
      result->grounding.clauses.clauses();
  const size_t num_atoms = result->grounding.atoms.num_atoms();
  Timer timer;

  if (num_atoms == 0) {
    result->truth.clear();
    result->search_cost = 0.0;
    return Status::OK();
  }

  switch (options_.search_mode) {
    case SearchMode::kInMemory: {
      Problem whole = MakeWholeProblem(num_atoms, clauses);
      // The a-priori charge uses the flat-layout constant (arena + state
      // per size unit); peak_search_bytes below reports the measured
      // footprint from the run itself.
      ScopedMemCharge charge(MemCategory::kSearch,
                             whole.SizeMetric() * kBytesPerSizeUnit);
      WalkSatOptions wopts;
      wopts.max_flips = options_.total_flips;
      wopts.p_random = options_.p_random;
      wopts.hard_weight = options_.hard_weight;
      wopts.timeout_seconds = options_.timeout_seconds;
      wopts.init_random = options_.init_random;
      wopts.trace_every_flips =
          std::max<uint64_t>(1, options_.total_flips / 200);
      Rng rng(options_.seed);
      WalkSat search(&whole, wopts, &rng);
      WalkSatResult wr = search.Run();
      result->peak_search_bytes = wr.state_bytes;
      result->truth = std::move(wr.best_truth);
      result->flips = wr.flips;
      result->trace = std::move(wr.trace);
      break;
    }

    case SearchMode::kComponentAware: {
      ComponentSet components = DetectComponents(num_atoms, clauses);
      result->num_components = components.num_components();

      // Batch the components under the memory budget (FFD), or give each
      // component its own batch when batch loading is disabled.
      std::vector<uint64_t> sizes(components.num_components());
      uint64_t total_size = 0;
      for (size_t i = 0; i < components.num_components(); ++i) {
        sizes[i] = ComponentSizeMetric(components, i, clauses);
        total_size += sizes[i];
      }
      uint64_t capacity_units =
          options_.memory_budget_bytes == 0
              ? std::max<uint64_t>(total_size, 1)
              : std::max<uint64_t>(1, options_.memory_budget_bytes /
                                          kBytesPerSizeUnit);
      std::vector<std::vector<size_t>> batches;
      if (options_.batch_loading) {
        BinPacking packing = FirstFitDecreasing(sizes, capacity_units);
        batches.resize(packing.num_bins);
        for (size_t i = 0; i < sizes.size(); ++i) {
          batches[packing.bin_of_item[i]].push_back(i);
        }
      } else {
        batches.resize(components.num_components());
        for (size_t i = 0; i < components.num_components(); ++i) {
          batches[i].push_back(i);
        }
      }

      std::unique_ptr<ClauseWarehouse> warehouse;
      if (options_.simulate_loading_io) {
        TUFFY_ASSIGN_OR_RETURN(
            warehouse,
            ClauseWarehouse::Create(clauses, options_.loading_buffer_frames,
                                    options_.loading_io_latency_us));
      }

      result->truth.assign(num_atoms, 0);
      uint64_t batch_peak = 0;
      int batch_index = 0;
      for (const std::vector<size_t>& batch : batches) {
        if (batch.empty()) continue;
        // Load this batch's clauses (through the warehouse if enabled).
        std::vector<uint32_t> batch_clause_ids;
        uint64_t batch_atoms = 0;
        uint64_t batch_size = 0;
        for (size_t comp : batch) {
          batch_clause_ids.insert(batch_clause_ids.end(),
                                  components.clauses[comp].begin(),
                                  components.clauses[comp].end());
          batch_atoms += components.atoms[comp].size();
          batch_size += sizes[comp];
        }
        Timer load_timer;
        std::vector<GroundClause> batch_clauses;
        if (warehouse != nullptr) {
          TUFFY_ASSIGN_OR_RETURN(batch_clauses,
                                 warehouse->Load(batch_clause_ids));
        } else {
          batch_clauses.reserve(batch_clause_ids.size());
          for (uint32_t ci : batch_clause_ids) {
            batch_clauses.push_back(clauses[ci]);
          }
        }
        result->load_seconds += load_timer.ElapsedSeconds();

        // Batch-local component set (clause ids index batch_clauses).
        ComponentSet batch_components;
        batch_components.atoms.reserve(batch.size());
        batch_components.clauses.resize(batch.size());
        uint32_t next_clause = 0;
        for (size_t k = 0; k < batch.size(); ++k) {
          size_t comp = batch[k];
          batch_components.atoms.push_back(components.atoms[comp]);
          for (size_t j = 0; j < components.clauses[comp].size(); ++j) {
            batch_components.clauses[k].push_back(next_clause++);
          }
        }

        batch_peak = std::max(batch_peak, batch_size * kBytesPerSizeUnit);
        ScopedMemCharge charge(MemCategory::kSearch,
                               batch_size * kBytesPerSizeUnit);

        ComponentSearchOptions copts;
        copts.total_flips = std::max<uint64_t>(
            1, options_.total_flips * batch_atoms / num_atoms);
        copts.rounds = options_.rounds;
        copts.num_threads = options_.num_threads;
        copts.p_random = options_.p_random;
        copts.hard_weight = options_.hard_weight;
        copts.timeout_seconds = options_.timeout_seconds;
        copts.init_random = options_.init_random;
        copts.use_exact = options_.exact_fast_path;
        ComponentSearchResult cr = RunComponentWalkSat(
            num_atoms, batch_clauses, batch_components, copts,
            DeriveSeed(options_.seed,
                       0x6261746368ull + static_cast<uint64_t>(batch_index)));
        batch_peak = std::max<uint64_t>(batch_peak, cr.state_bytes);
        for (size_t comp : batch) {
          for (AtomId a : components.atoms[comp]) {
            result->truth[a] = cr.truth[a];
          }
        }
        result->flips += cr.flips;
        result->exact_components += cr.exact_components;
        double offset = timer.ElapsedSeconds() - cr.seconds;
        for (const TracePoint& tp : cr.trace) {
          result->trace.push_back(
              TracePoint{tp.seconds + offset, tp.flips, tp.cost});
        }
        ++batch_index;
      }
      result->peak_search_bytes = batch_peak;
      break;
    }

    case SearchMode::kPartitionAware: {
      uint64_t beta = options_.memory_budget_bytes == 0
                          ? UINT64_MAX
                          : std::max<uint64_t>(
                                1, options_.memory_budget_bytes /
                                       kBytesPerSizeUnit);
      PartitionResult partitions = PartitionMrf(num_atoms, clauses, beta);
      result->num_partitions = partitions.num_partitions();
      result->num_components =
          DetectComponents(num_atoms, clauses).num_components();
      uint64_t max_part = 0;
      for (uint64_t s : partitions.sizes) max_part = std::max(max_part, s);
      result->peak_search_bytes = max_part * kBytesPerSizeUnit;
      ScopedMemCharge charge(MemCategory::kSearch, result->peak_search_bytes);

      GaussSeidelOptions gopts;
      gopts.sweeps = options_.rounds;
      gopts.flips_per_partition = std::max<uint64_t>(
          1, options_.total_flips /
                 std::max<uint64_t>(
                     1, static_cast<uint64_t>(options_.rounds) *
                            partitions.num_partitions()));
      gopts.p_random = options_.p_random;
      gopts.hard_weight = options_.hard_weight;
      gopts.timeout_seconds = options_.timeout_seconds;
      gopts.init_random = options_.init_random;
      GaussSeidelResult gr = RunGaussSeidel(num_atoms, clauses, partitions,
                                            gopts, options_.seed);
      result->truth = std::move(gr.truth);
      result->flips = gr.flips;
      result->trace = std::move(gr.trace);
      break;
    }

    case SearchMode::kDisk: {
      Problem whole = MakeWholeProblem(num_atoms, clauses);
      DiskWalkSatOptions dopts;
      dopts.max_flips = options_.total_flips;
      dopts.p_random = options_.p_random;
      dopts.hard_weight = options_.hard_weight;
      dopts.timeout_seconds = options_.timeout_seconds;
      dopts.buffer_frames = options_.disk_buffer_frames;
      dopts.io_latency_us = options_.disk_io_latency_us;
      dopts.trace_every_flips = 1;
      dopts.init_random = options_.init_random;
      TUFFY_ASSIGN_OR_RETURN(std::unique_ptr<DiskWalkSat> ws,
                             DiskWalkSat::Create(whole, dopts));
      // Only the atom array lives in RAM for Tuffy-mm.
      result->peak_search_bytes = num_atoms;
      Rng rng(options_.seed);
      WalkSatResult wr = ws->Run(&rng);
      result->truth = std::move(wr.best_truth);
      result->flips = wr.flips;
      result->trace = std::move(wr.trace);
      break;
    }
  }

  // Loading (charged to load_seconds above) happened inside this span;
  // report pure search time.
  result->search_seconds = timer.ElapsedSeconds() - result->load_seconds;
  return Status::OK();
}

Result<EngineResult> TuffyEngine::Run() {
  TUFFY_RETURN_IF_ERROR(ValidateEngineOptions(options_));
  EngineResult result;

  Timer ground_timer;
  if (options_.grounding_mode == GroundingMode::kBottomUp) {
    // The engine's worker-thread knob also parallelizes per-rule
    // grounding (results are thread-count invariant; determinism_test).
    GroundingOptions gopts = options_.grounding;
    gopts.num_threads = options_.num_threads;
    BottomUpGrounder grounder(program_, evidence_, gopts,
                              options_.optimizer);
    TUFFY_ASSIGN_OR_RETURN(result.grounding, grounder.Ground());
    result.explain = grounder.explain();
  } else {
    TopDownGrounder grounder(program_, evidence_, options_.grounding);
    TUFFY_ASSIGN_OR_RETURN(result.grounding, grounder.Ground());
  }
  result.grounding_seconds = ground_timer.ElapsedSeconds();
  result.clause_table_bytes = result.grounding.clauses.EstimateBytes();
  MemTracker::Global().Allocate(MemCategory::kClauseTable,
                                result.clause_table_bytes);

  Status st;
  if (options_.task == InferenceTask::kMarginal) {
    // Marginal inference (Appendix A.5): MC-SAT over the ground MRF.
    Timer search_timer;
    const size_t n = result.grounding.atoms.num_atoms();
    if (n > 0) {
      const std::vector<GroundClause>& gclauses =
          result.grounding.clauses.clauses();
      McSatOptions mopts;
      mopts.num_samples = options_.mcsat_samples;
      mopts.burn_in = options_.mcsat_burn_in;
      mopts.hard_weight = options_.hard_weight;
      // Tractable components get exact marginals; the rest go to MC-SAT.
      // When nothing is tractable (or the fast path is off) this is the
      // historical whole-problem MC-SAT, bit for bit.
      std::vector<uint32_t> rest_clauses;
      std::vector<AtomId> rest_atoms;
      bool any_exact = false;
      if (options_.exact_fast_path) {
        result.marginals.assign(n, 0.0);
        ComponentSet comps = DetectComponents(n, gclauses);
        for (size_t i = 0; i < comps.num_components(); ++i) {
          SubProblem sub =
              BuildSubProblem(gclauses, comps.clauses[i], comps.atoms[i]);
          ExactSolveResult ex = TrySolveExact(sub.problem,
                                              options_.hard_weight,
                                              /*want_marginals=*/true);
          if (ex.solved) {
            any_exact = true;
            ++result.exact_components;
            for (size_t j = 0; j < sub.global_atom.size(); ++j) {
              result.marginals[sub.global_atom[j]] = ex.marginals[j];
            }
          } else {
            rest_clauses.insert(rest_clauses.end(), comps.clauses[i].begin(),
                                comps.clauses[i].end());
            rest_atoms.insert(rest_atoms.end(), comps.atoms[i].begin(),
                              comps.atoms[i].end());
          }
        }
      }
      if (!any_exact) {
        Problem whole = MakeWholeProblem(n, gclauses);
        McSatResult mr = RunMcSat(whole, mopts, options_.seed);
        result.marginals = std::move(mr.marginals);
      } else if (!rest_atoms.empty()) {
        SubProblem rest = BuildSubProblem(gclauses, rest_clauses, rest_atoms);
        McSatResult mr = RunMcSat(rest.problem, mopts, options_.seed);
        for (size_t j = 0; j < rest.global_atom.size(); ++j) {
          result.marginals[rest.global_atom[j]] = mr.marginals[j];
        }
      }
      // The MAP-style fields still get a best-effort thresholded state.
      result.truth.assign(n, 0);
      for (size_t a = 0; a < n; ++a) {
        result.truth[a] = result.marginals[a] >= 0.5 ? 1 : 0;
      }
    }
    result.search_seconds = search_timer.ElapsedSeconds();
    st = Status::OK();
  } else {
    st = RunSearch(&result);
  }
  MemTracker::Global().Release(MemCategory::kClauseTable,
                               result.clause_table_bytes);
  TUFFY_RETURN_IF_ERROR(st);

  // Uniform cost accounting across all modes.
  const size_t num_atoms = result.grounding.atoms.num_atoms();
  if (num_atoms > 0) {
    Problem whole =
        MakeWholeProblem(num_atoms, result.grounding.clauses.clauses());
    if (result.truth.size() != num_atoms) result.truth.assign(num_atoms, 0);
    result.search_cost = whole.EvalCost(result.truth, options_.hard_weight);
  }
  result.total_cost = result.search_cost + result.grounding.fixed_cost;
  return result;
}

Result<LearnResult> TuffyEngine::Learn(const LearnOptions& learn_options) {
  TUFFY_RETURN_IF_ERROR(ValidateEngineOptions(options_));
  TUFFY_RETURN_IF_ERROR(ValidateLearnOptions(learn_options));
  TUFFY_ASSIGN_OR_RETURN(
      TrainingSplit split,
      SplitEvidenceForLearning(program_, evidence_,
                               learn_options.query_predicates));

  // Exhaustive grounding: the lazy closure keeps only clauses violable
  // near the evidence-default world, which is sound for MAP search but
  // biases the satisfied-grounding counts the gradient is built from.
  GroundingOptions gopts = options_.grounding;
  gopts.lazy_closure = false;
  gopts.keep_zero_weight_clauses = true;
  GroundingResult grounding;
  if (options_.grounding_mode == GroundingMode::kBottomUp) {
    gopts.num_threads = options_.num_threads;
    BottomUpGrounder grounder(program_, split.evidence, gopts,
                              options_.optimizer);
    TUFFY_ASSIGN_OR_RETURN(grounding, grounder.Ground());
  } else {
    TopDownGrounder grounder(program_, split.evidence, gopts);
    TUFFY_ASSIGN_OR_RETURN(grounding, grounder.Ground());
  }

  const size_t table_bytes = grounding.clauses.EstimateBytes();
  ScopedMemCharge charge(MemCategory::kClauseTable, table_bytes);
  return LearnWeights(program_, grounding, split.labels, learn_options);
}

namespace {

SessionOptions TranslateSessionOptions(const EngineOptions& options) {
  SessionOptions sopts;
  sopts.total_flips = options.total_flips;
  sopts.p_random = options.p_random;
  sopts.hard_weight = options.hard_weight;
  sopts.num_threads = options.num_threads;
  sopts.init_random = options.init_random;
  sopts.seed = options.seed;
  sopts.exact_fast_path = options.exact_fast_path;
  sopts.track_marginals = options.task == InferenceTask::kMarginal;
  sopts.mcsat_samples = options.mcsat_samples;
  sopts.mcsat_burn_in = options.mcsat_burn_in;
  sopts.grounding = options.grounding;
  sopts.optimizer = options.optimizer;
  sopts.wal_dir = options.wal_dir;
  sopts.snapshot_every = options.snapshot_every;
  sopts.wal_fsync = options.wal_fsync;
  return sopts;
}

}  // namespace

Result<std::unique_ptr<InferenceSession>> TuffyEngine::OpenSession() const {
  TUFFY_RETURN_IF_ERROR(ValidateEngineOptions(options_));
  auto session = std::make_unique<InferenceSession>(
      program_, TranslateSessionOptions(options_));
  TUFFY_RETURN_IF_ERROR(session->Open(evidence_));
  return session;
}

Result<std::unique_ptr<InferenceSession>> TuffyEngine::RecoverSession(
    RecoveryStats* stats) const {
  TUFFY_RETURN_IF_ERROR(ValidateEngineOptions(options_));
  return InferenceSession::Recover(program_, TranslateSessionOptions(options_),
                                   nullptr, stats);
}

Result<std::vector<GroundAtom>> ExtractTrueAtoms(
    const MlnProgram& program, const AtomStore& atoms,
    const std::vector<uint8_t>& truth, const std::string& predicate_name) {
  TUFFY_ASSIGN_OR_RETURN(PredicateId pid,
                         program.FindPredicate(predicate_name));
  std::vector<GroundAtom> out;
  for (AtomId a = 0; a < atoms.num_atoms(); ++a) {
    if (atoms.atom(a).pred == pid && a < truth.size() && truth[a] != 0) {
      out.push_back(atoms.atom(a));
    }
  }
  return out;
}

}  // namespace tuffy
