#ifndef TUFFY_EXEC_TUFFY_ENGINE_H_
#define TUFFY_EXEC_TUFFY_ENGINE_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "ground/grounding.h"
#include "infer/walksat.h"
#include "learn/learn_options.h"
#include "learn/learner.h"
#include "mln/model.h"
#include "ra/optimizer.h"
#include "serve/inference_session.h"
#include "util/result.h"

namespace tuffy {

/// Which grounding strategy to use (Section 3.1 vs the Alchemy baseline).
enum class GroundingMode { kBottomUp, kTopDown };

/// Which search architecture to use.
enum class SearchMode {
  /// Whole-MRF in-memory WalkSAT: Tuffy-p, and also the search phase of
  /// the Alchemy baseline.
  kInMemory,
  /// Component detection + weighted round-robin per-component WalkSAT
  /// with per-component best tracking (Section 3.3): full Tuffy.
  kComponentAware,
  /// Algorithm 3 partitioning bounded by the memory budget + Gauss-
  /// Seidel partition-aware search (Section 3.4).
  kPartitionAware,
  /// RDBMS-resident WalkSAT: Tuffy-mm (Appendix B.2).
  kDisk,
};

/// Which inference task to run (Section 2.2 / Appendix A.5).
enum class InferenceTask { kMap, kMarginal };

struct EngineOptions {
  GroundingMode grounding_mode = GroundingMode::kBottomUp;
  InferenceTask task = InferenceTask::kMap;
  /// MC-SAT rounds for marginal inference.
  int mcsat_samples = 500;
  int mcsat_burn_in = 50;
  GroundingOptions grounding;
  OptimizerOptions optimizer;

  SearchMode search_mode = SearchMode::kComponentAware;
  uint64_t total_flips = 1000000;
  double p_random = 0.5;
  double hard_weight = 1e6;
  double timeout_seconds = std::numeric_limits<double>::infinity();
  uint64_t seed = 42;
  /// Rounds for round-robin scheduling / Gauss-Seidel sweeps.
  int rounds = 8;
  int num_threads = 1;
  bool init_random = true;

  /// Route tractable components (src/infer/exact) to the exact
  /// linear-time solver instead of WalkSAT / MC-SAT. Lesion toggle:
  /// false reproduces pure-sampler behavior everywhere.
  bool exact_fast_path = true;

  /// Memory budget in bytes for search state. Bounds the partition size
  /// (kPartitionAware) and the FFD batch capacity (kComponentAware).
  /// 0 = unlimited.
  uint64_t memory_budget_bytes = 0;

  /// If true (default), components are FFD-packed into memory-budget
  /// batches and each batch is loaded from the clause warehouse with one
  /// bulk read; if false, components load one by one (Table 7 baseline).
  bool batch_loading = true;
  /// If true, clause loading goes through the disk-backed warehouse with
  /// this per-page latency; if false, loading is from memory (fast path
  /// for tests).
  bool simulate_loading_io = false;
  uint32_t loading_io_latency_us = 20;
  size_t loading_buffer_frames = 64;

  /// Tuffy-mm knobs.
  size_t disk_buffer_frames = 64;
  uint32_t disk_io_latency_us = 20;

  /// Serving durability (OpenSession / RecoverSession only; batch runs
  /// ignore these). See SessionOptions and docs/DURABILITY.md.
  std::string wal_dir;
  uint32_t snapshot_every = 0;
  bool wal_fsync = true;
};

/// Validates the engine knobs up front (negative sampling budgets, bad
/// probabilities, non-positive hard weight, ...) so a misconfiguration
/// fails with a Status instead of silently misbehaving mid-run.
Status ValidateEngineOptions(const EngineOptions& options);

struct EngineResult {
  GroundingResult grounding;
  /// Best truth assignment over the ground atoms (MAP task).
  std::vector<uint8_t> truth;
  /// Estimated P(atom = true) per atom (marginal task only).
  std::vector<double> marginals;
  /// Cost of `truth` over the ground clauses (hard violations charged at
  /// options.hard_weight).
  double search_cost = 0.0;
  /// search_cost + the grounding-time fixed cost.
  double total_cost = 0.0;
  double grounding_seconds = 0.0;
  double load_seconds = 0.0;
  double search_seconds = 0.0;
  uint64_t flips = 0;
  size_t num_components = 0;
  size_t num_partitions = 0;
  /// Components answered by the exact solver (kComponentAware search
  /// and the marginal task; zero when exact_fast_path is off).
  size_t exact_components = 0;
  /// Best-cost-so-far samples over the search (times relative to search
  /// start).
  std::vector<TracePoint> trace;
  /// Clause-table footprint (paper Table 4 row 1).
  size_t clause_table_bytes = 0;
  /// Peak in-memory search state (paper Table 4/5 RAM rows).
  size_t peak_search_bytes = 0;
  /// Per-rule EXPLAIN of the grounding queries (bottom-up mode only;
  /// includes per-operator ANALYZE lines when options.optimizer.analyze
  /// is set). Printed by `tuffy_cli -explain`.
  std::string explain;

  double FlipsPerSecond() const {
    return search_seconds > 0 ? static_cast<double>(flips) / search_seconds
                              : 0.0;
  }
};

/// End-to-end MLN MAP inference engine: grounds the program (bottom-up in
/// the relational engine, or top-down as the Alchemy baseline), detects /
/// partitions MRF components, and runs the selected search architecture.
class TuffyEngine {
 public:
  TuffyEngine(const MlnProgram& program, const EvidenceDb& evidence,
              EngineOptions options)
      : program_(program), evidence_(evidence), options_(options) {}

  Result<EngineResult> Run();

  /// Weight learning: splits this engine's evidence into conditioning
  /// evidence and labels (per options.query_predicates), grounds the
  /// program exhaustively against the evidence side (lazy closure off —
  /// pruned clauses would bias the satisfied-grounding counts), and runs
  /// the gradient learner. The engine's own program/evidence are not
  /// modified; apply LearnResult::weights with
  /// MlnProgram::SetClauseWeight to run inference with learned weights.
  Result<LearnResult> Learn(const LearnOptions& options);

  /// Opens a long-lived serving session over this engine's program and
  /// current evidence: grounds once (exhaustively — see InferenceSession)
  /// and cold-starts the search, after which evidence deltas are served
  /// incrementally via InferenceSession::ApplyDelta. The engine's search
  /// knobs (flips, p_random, hard_weight, threads, seed, MC-SAT budgets
  /// when task == kMarginal) carry over. The program must outlive the
  /// returned session; the engine itself need not.
  Result<std::unique_ptr<InferenceSession>> OpenSession() const;

  /// Recovers a crashed durable session from options.wal_dir instead of
  /// grounding from evidence (which is ignored — the WAL is the evidence
  /// of record). Same knob translation as OpenSession; see
  /// InferenceSession::Recover.
  Result<std::unique_ptr<InferenceSession>> RecoverSession(
      RecoveryStats* stats = nullptr) const;

 private:
  Status RunSearch(EngineResult* result);

  const MlnProgram& program_;
  const EvidenceDb& evidence_;
  EngineOptions options_;
};

/// Extracts the atoms of `predicate_name` that are true in `truth`,
/// i.e. the answer to the MAP query for that relation.
Result<std::vector<GroundAtom>> ExtractTrueAtoms(
    const MlnProgram& program, const AtomStore& atoms,
    const std::vector<uint8_t>& truth, const std::string& predicate_name);

}  // namespace tuffy

#endif  // TUFFY_EXEC_TUFFY_ENGINE_H_
