#include "exec/clause_warehouse.h"

#include <algorithm>
#include <cstring>

namespace tuffy {

ClauseWarehouse::ClauseWarehouse(size_t buffer_frames, uint32_t io_latency_us) {
  disk_ = std::make_unique<DiskManager>();
  disk_->set_simulated_latency_us(io_latency_us);
  pool_ = std::make_unique<BufferPool>(buffer_frames, disk_.get());
  file_ = std::make_unique<HeapFile>(pool_.get(), sizeof(ClauseRecord));
}

Result<std::unique_ptr<ClauseWarehouse>> ClauseWarehouse::Create(
    const std::vector<GroundClause>& clauses, size_t buffer_frames,
    uint32_t io_latency_us) {
  std::unique_ptr<ClauseWarehouse> wh(
      new ClauseWarehouse(buffer_frames, io_latency_us));
  wh->record_of_clause_.assign(clauses.size(), -1);
  wh->overflow_of_clause_.assign(clauses.size(), -1);
  int64_t next_record = 0;
  for (size_t ci = 0; ci < clauses.size(); ++ci) {
    const GroundClause& c = clauses[ci];
    if (c.lits.size() > kMaxLitsPerClause) {
      wh->overflow_of_clause_[ci] =
          static_cast<int64_t>(wh->overflow_.size());
      wh->overflow_.push_back(c);
      continue;
    }
    ClauseRecord rec;
    std::memset(&rec, 0, sizeof(rec));
    rec.weight = c.weight;
    rec.rule_id = c.rule_id;
    rec.hard = c.hard ? 1 : 0;
    rec.num_lits = static_cast<uint8_t>(c.lits.size());
    for (size_t i = 0; i < c.lits.size(); ++i) rec.lits[i] = c.lits[i];
    TUFFY_ASSIGN_OR_RETURN(RecordId rid,
                           wh->file_->Append(reinterpret_cast<char*>(&rec)));
    (void)rid;
    wh->record_of_clause_[ci] = next_record++;
  }
  TUFFY_RETURN_IF_ERROR(wh->pool_->FlushAll());
  return wh;
}

Result<std::vector<GroundClause>> ClauseWarehouse::Load(
    const std::vector<uint32_t>& clause_ids) {
  std::vector<GroundClause> out(clause_ids.size());
  // Fetch in physical record order so one bulk load touches each page
  // once (the point of FFD batch loading, Section 3.3); results are still
  // returned in the requested order.
  std::vector<std::pair<int64_t, size_t>> order;
  order.reserve(clause_ids.size());
  for (size_t k = 0; k < clause_ids.size(); ++k) {
    uint32_t ci = clause_ids[k];
    if (record_of_clause_[ci] < 0) {
      out[k] = overflow_[overflow_of_clause_[ci]];
      continue;
    }
    order.emplace_back(record_of_clause_[ci], k);
  }
  std::sort(order.begin(), order.end());
  ClauseRecord rec;
  for (const auto& [record_idx, k] : order) {
    TUFFY_RETURN_IF_ERROR(file_->ReadNth(static_cast<uint64_t>(record_idx),
                                         reinterpret_cast<char*>(&rec)));
    GroundClause c;
    c.weight = rec.weight;
    c.rule_id = rec.rule_id;
    c.hard = rec.hard != 0;
    c.lits.assign(rec.lits, rec.lits + rec.num_lits);
    out[k] = std::move(c);
  }
  return out;
}

}  // namespace tuffy
