#ifndef TUFFY_EXEC_CLAUSE_WAREHOUSE_H_
#define TUFFY_EXEC_CLAUSE_WAREHOUSE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "ground/ground_clause.h"
#include "storage/buffer_pool.h"
#include "storage/heap_file.h"
#include "util/result.h"

namespace tuffy {

/// The grounding result as it rests in the RDBMS: a heap file of clause
/// records read back through a buffer pool. The hybrid architecture
/// (Section 3.2) grounds in the RDBMS and then *loads* clauses into
/// memory for search; this class makes the cost of that loading real, so
/// the batch-loading experiment (Table 7) measures genuine page I/O:
/// loading components one by one re-reads shared pages many times, while
/// an FFD batch is fetched with near-sequential access.
class ClauseWarehouse {
 public:
  /// Capacity of one on-disk clause record.
  static constexpr int kMaxLitsPerClause = 24;

  /// Writes all clauses to a fresh heap file. Clauses longer than the
  /// record capacity stay in a memory-side overflow list (rare; loading
  /// them is free, which only *under*-states the I/O effect).
  static Result<std::unique_ptr<ClauseWarehouse>> Create(
      const std::vector<GroundClause>& clauses, size_t buffer_frames,
      uint32_t io_latency_us);

  /// Reads the given clauses (by index into the original vector) back
  /// from storage.
  Result<std::vector<GroundClause>> Load(
      const std::vector<uint32_t>& clause_ids);

  uint64_t pages_read() const { return disk_->num_reads(); }
  const BufferPoolStats& buffer_stats() const { return pool_->stats(); }

 private:
  struct ClauseRecord {
    double weight;
    int32_t rule_id;
    uint8_t hard;
    uint8_t num_lits;
    Lit lits[kMaxLitsPerClause];
  };

  ClauseWarehouse(size_t buffer_frames, uint32_t io_latency_us);

  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<HeapFile> file_;
  /// record index per clause id; -1 => overflow_ entry.
  std::vector<int64_t> record_of_clause_;
  std::vector<GroundClause> overflow_;
  std::vector<int64_t> overflow_of_clause_;
};

}  // namespace tuffy

#endif  // TUFFY_EXEC_CLAUSE_WAREHOUSE_H_
