#!/usr/bin/env python3
"""Markdown link checker for README.md and docs/.

Verifies that every relative link target in the checked markdown files
exists in the repository (anchors are checked against the target file's
headings). External http(s) links are not fetched — CI must not depend
on the network — only their syntax is accepted.

Usage: scripts/check_md_links.py [repo_root]
Exit code 0 when every link resolves, 1 otherwise.
"""

import os
import re
import sys


LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#+\s+(.*)$", re.MULTILINE)


def anchor_of(heading: str) -> str:
    """GitHub-style anchor: lowercase, spaces to dashes, drop punctuation."""
    text = heading.strip().lower()
    text = re.sub(r"[`*_~]", "", text)
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def collect_files(root: str):
    files = []
    readme = os.path.join(root, "README.md")
    if os.path.exists(readme):
        files.append(readme)
    docs = os.path.join(root, "docs")
    if os.path.isdir(docs):
        for name in sorted(os.listdir(docs)):
            if name.endswith(".md"):
                files.append(os.path.join(docs, name))
    return files


def check_file(root: str, path: str):
    errors = []
    with open(path, encoding="utf-8") as f:
        content = f.read()
    for match in LINK_RE.finditer(content):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        target, _, anchor = target.partition("#")
        if target == "":
            resolved = path  # same-file anchor
        else:
            resolved = os.path.normpath(os.path.join(os.path.dirname(path),
                                                     target))
        if not os.path.exists(resolved):
            errors.append(f"{os.path.relpath(path, root)}: broken link "
                          f"-> {match.group(1)}")
            continue
        if anchor and resolved.endswith(".md"):
            with open(resolved, encoding="utf-8") as f:
                raw = [anchor_of(h) for h in HEADING_RE.findall(f.read())]
            # GitHub disambiguates repeated headings as name, name-1, ...
            headings, seen = [], {}
            for h in raw:
                n = seen.get(h, 0)
                seen[h] = n + 1
                headings.append(h if n == 0 else f"{h}-{n}")
            if anchor.lower() not in headings:
                errors.append(f"{os.path.relpath(path, root)}: missing anchor "
                              f"-> {match.group(1)}")
    return errors


def main() -> int:
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else ".")
    files = collect_files(root)
    if not files:
        print("check_md_links: no markdown files found", file=sys.stderr)
        return 1
    errors = []
    for path in files:
        errors.extend(check_file(root, path))
    for err in errors:
        print(err, file=sys.stderr)
    print(f"check_md_links: {len(files)} files, "
          f"{'OK' if not errors else f'{len(errors)} broken links'}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
