// Exact inference for tractable components (docs/INFERENCE_EXACT.md):
// generate randomized tractable MRFs, solve every component with the
// linear-time exact solver, cross-check MAP cost / marginals / ln Z
// against brute-force enumeration, and show the engine-level lesion —
// exact fast path on vs off lands on the same cost, with the exact run
// spending zero flips on tractable components.
//
// Run:  ./build/exact_oracle

#include <cmath>
#include <cstdio>

#include "datagen/datasets.h"
#include "infer/brute_force.h"
#include "infer/component_walksat.h"
#include "infer/exact/exact_solver.h"
#include "infer/problem.h"
#include "mrf/components.h"

using namespace tuffy;  // NOLINT: example brevity

int main() {
  constexpr double kHardWeight = 1e6;
  size_t components_checked = 0;

  for (uint64_t seed = 1; seed <= 20; ++seed) {
    TractableMrfParams params;
    params.num_components = 4;
    params.max_atoms = 8;
    params.conditioned_prob = seed % 2 == 0 ? 0.5 : 0.0;
    params.seed = seed;
    size_t num_atoms = 0;
    std::vector<GroundClause> clauses = MakeTractableMrf(params, &num_atoms);
    ComponentSet comps = DetectComponents(num_atoms, clauses);

    for (size_t c = 0; c < comps.num_components(); ++c) {
      SubProblem sub = BuildSubProblem(clauses, comps.clauses[c], comps.atoms[c]);
      ExactSolveResult ex = TrySolveExact(sub.problem, kHardWeight, true);
      if (!ex.solved) {
        std::fprintf(stderr, "seed %llu comp %zu: not solved (%s)\n",
                     static_cast<unsigned long long>(seed), c,
                     ExactFragmentName(ex.fragment));
        return 1;
      }
      auto map = ExactMap(sub.problem, kHardWeight);
      auto marg = ExactMarginals(sub.problem);
      auto lz = ExactLogZ(sub.problem);
      if (!map.ok() || !marg.ok() || !lz.ok()) {
        std::fprintf(stderr, "brute force failed on seed %llu comp %zu\n",
                     static_cast<unsigned long long>(seed), c);
        return 1;
      }
      bool bad = ex.map_cost != map.value().cost ||
                 std::fabs(ex.log_z - lz.value()) > 1e-9;
      for (size_t a = 0; a < marg.value().size(); ++a) {
        bad = bad || std::fabs(ex.marginals[a] - marg.value()[a]) > 1e-9;
      }
      if (bad) {
        std::fprintf(stderr,
                     "mismatch on seed %llu comp %zu: exact cost %.6f vs "
                     "brute %.6f\n",
                     static_cast<unsigned long long>(seed), c, ex.map_cost,
                     map.value().cost);
        return 1;
      }
      ++components_checked;
    }

    // Lesion: pure-sampler search over the same MRF reaches the same
    // total cost, while the exact run spends zero flips.
    ComponentSearchOptions copts;
    copts.total_flips = 400000;
    copts.hard_weight = kHardWeight;
    copts.use_exact = false;
    ComponentSearchResult sampler =
        RunComponentWalkSat(num_atoms, clauses, comps, copts, seed);
    copts.use_exact = true;
    ComponentSearchResult exact =
        RunComponentWalkSat(num_atoms, clauses, comps, copts, seed);
    if (exact.cost != sampler.cost || exact.flips != 0 ||
        exact.exact_components != comps.num_components()) {
      std::fprintf(stderr,
                   "lesion mismatch on seed %llu: exact cost %.6f flips %llu "
                   "vs sampler cost %.6f\n",
                   static_cast<unsigned long long>(seed), exact.cost,
                   static_cast<unsigned long long>(exact.flips), sampler.cost);
      return 1;
    }
  }

  std::printf("checked %zu components against brute force\n",
              components_checked);
  std::printf("exact oracle smoke OK\n");
  return 0;
}
