// Serving-layer smoke: open a long-lived inference session, stream
// three evidence deltas through it, and verify after every delta that
// the session's MAP cost equals a from-scratch TuffyEngine run over the
// accumulated evidence. Exits non-zero on any mismatch, so CI can use it
// as the serving equivalence gate.

#include <cmath>
#include <cstdio>

#include "datagen/datasets.h"
#include "exec/tuffy_engine.h"
#include "serve/inference_session.h"

using namespace tuffy;  // NOLINT: example brevity

namespace {

GroundAtom CatAtom(const MlnProgram& program, const char* paper,
                   const char* category) {
  GroundAtom atom;
  atom.pred = program.FindPredicate("cat").value();
  atom.args = {program.symbols().Find(paper),
               program.symbols().Find(category)};
  return atom;
}

}  // namespace

int main() {
  RcParams params;
  params.num_clusters = 4;
  params.papers_per_cluster = 6;
  params.num_categories = 3;
  params.labeled_fraction = 0.6;
  auto ds = MakeRcDataset(params);
  if (!ds.ok()) {
    std::fprintf(stderr, "dataset: %s\n", ds.status().ToString().c_str());
    return 1;
  }
  MlnProgram& program = ds.value().program;
  EvidenceDb evidence = ds.value().evidence;

  EngineOptions opts;
  opts.search_mode = SearchMode::kComponentAware;
  opts.grounding.lazy_closure = false;  // session grounding semantics
  opts.total_flips = 80000;

  TuffyEngine engine(program, evidence, opts);
  auto session = engine.OpenSession();
  if (!session.ok()) {
    std::fprintf(stderr, "open: %s\n", session.status().ToString().c_str());
    return 1;
  }
  std::printf("session open: %zu atoms, %zu clauses, %zu components, "
              "cost %.2f\n",
              session.value()->atoms().num_atoms(),
              session.value()->clauses().size(),
              session.value()->num_components(),
              session.value()->map_cost());

  // Three deltas: retract a label, relabel a paper, bridge two clusters.
  GroundAtom some_label;
  for (const auto& [atom, truth] : evidence.entries()) {
    if (atom.pred == program.FindPredicate("cat").value() && truth) {
      some_label = atom;
      break;
    }
  }
  EvidenceDelta d1;
  d1.Retract(some_label);
  EvidenceDelta d2;
  d2.Assert(CatAtom(program, "P0", "Networking"), true);
  EvidenceDelta d3;
  GroundAtom bridge;
  bridge.pred = program.FindPredicate("refers").value();
  bridge.args = {program.symbols().Find("P0"),
                 program.symbols().Find("P11")};
  d3.Assert(bridge, true);

  const EvidenceDelta* deltas[] = {&d1, &d2, &d3};
  for (int i = 0; i < 3; ++i) {
    auto r = session.value()->ApplyDelta(*deltas[i]);
    if (!r.ok()) {
      std::fprintf(stderr, "delta %d: %s\n", i,
                   r.status().ToString().c_str());
      return 1;
    }
    for (const auto& [atom, truth] : deltas[i]->assertions) {
      evidence.Add(atom, truth);
    }
    for (const GroundAtom& atom : deltas[i]->retractions) {
      evidence.Remove(atom);
    }

    TuffyEngine fresh(program, evidence, opts);
    auto cold = fresh.Run();
    if (!cold.ok()) {
      std::fprintf(stderr, "fresh %d: %s\n", i,
                   cold.status().ToString().c_str());
      return 1;
    }
    double warm_cost = r.value().map_cost;
    double cold_cost = cold.value().total_cost;
    std::printf("delta %d: %zu/%zu components re-searched, warm cost %.4f, "
                "cold cost %.4f\n",
                i, r.value().components_dirty, r.value().components_total,
                warm_cost, cold_cost);
    if (std::fabs(warm_cost - cold_cost) > 1e-6) {
      std::fprintf(stderr, "MISMATCH after delta %d: warm %.6f cold %.6f\n",
                   i, warm_cost, cold_cost);
      return 1;
    }
    if (std::fabs(warm_cost - session.value()->EvalCurrentCost()) > 1e-9) {
      std::fprintf(stderr, "BOOKKEEPING DRIFT after delta %d\n", i);
      return 1;
    }
  }
  std::printf("serving smoke OK: 3 deltas, session MAP == from-scratch "
              "Infer throughout\n");
  return 0;
}
