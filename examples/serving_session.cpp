// Serving-layer smoke: open a long-lived inference session, stream
// three evidence deltas through it, and verify after every delta that
// the session's MAP cost equals a from-scratch TuffyEngine run over the
// accumulated evidence. Exits non-zero on any mismatch, so CI can use it
// as the serving equivalence gate.
//
// Durability smoke (docs/DURABILITY.md), driven by CI's recovery job:
//   serving_session -wal_dir DIR                durable run of the stream
//   serving_session -wal_dir DIR -crash_at SPEC same, but arm a fault
//       point first (util/fault_points.h grammar, e.g.
//       "wal.append.mid_record=crash@1"); a crash action kills the
//       process with exit code 43 mid-delta, leaving a torn WAL.
//   serving_session -wal_dir DIR -recover       recover the crashed
//       session, print the recovery stats, re-apply whatever suffix of
//       the stream the crash swallowed, and verify the final MAP cost
//       against a from-scratch run over the full evidence.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "datagen/datasets.h"
#include "exec/tuffy_engine.h"
#include "serve/inference_session.h"
#include "util/fault_points.h"

using namespace tuffy;  // NOLINT: example brevity

namespace {

GroundAtom CatAtom(const MlnProgram& program, const char* paper,
                   const char* category) {
  GroundAtom atom;
  atom.pred = program.FindPredicate("cat").value();
  atom.args = {program.symbols().Find(paper),
               program.symbols().Find(category)};
  return atom;
}

/// The canonical three-delta stream every mode of this binary runs:
/// retract a label, relabel a paper, bridge two clusters.
std::vector<EvidenceDelta> MakeDeltas(const MlnProgram& program,
                                      const EvidenceDb& evidence) {
  GroundAtom some_label;
  for (const auto& [atom, truth] : evidence.entries()) {
    if (atom.pred == program.FindPredicate("cat").value() && truth) {
      some_label = atom;
      break;
    }
  }
  std::vector<EvidenceDelta> deltas(3);
  deltas[0].Retract(some_label);
  deltas[1].Assert(CatAtom(program, "P0", "Networking"), true);
  GroundAtom bridge;
  bridge.pred = program.FindPredicate("refers").value();
  bridge.args = {program.symbols().Find("P0"),
                 program.symbols().Find("P11")};
  deltas[2].Assert(bridge, true);
  return deltas;
}

void FoldDelta(const EvidenceDelta& delta, EvidenceDb* evidence) {
  for (const auto& [atom, truth] : delta.assertions) {
    evidence->Add(atom, truth);
  }
  for (const GroundAtom& atom : delta.retractions) {
    evidence->Remove(atom);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string wal_dir;
  std::string crash_at;
  bool recover = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "-wal_dir") == 0 && i + 1 < argc) {
      wal_dir = argv[++i];
    } else if (std::strcmp(argv[i], "-crash_at") == 0 && i + 1 < argc) {
      crash_at = argv[++i];
    } else if (std::strcmp(argv[i], "-recover") == 0) {
      recover = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [-wal_dir DIR [-crash_at SPEC | -recover]]\n",
                   argv[0]);
      return 2;
    }
  }
  if (wal_dir.empty() && (recover || !crash_at.empty())) {
    std::fprintf(stderr, "-crash_at/-recover need -wal_dir\n");
    return 2;
  }

  RcParams params;
  params.num_clusters = 4;
  params.papers_per_cluster = 6;
  params.num_categories = 3;
  params.labeled_fraction = 0.6;
  auto ds = MakeRcDataset(params);
  if (!ds.ok()) {
    std::fprintf(stderr, "dataset: %s\n", ds.status().ToString().c_str());
    return 1;
  }
  MlnProgram& program = ds.value().program;
  EvidenceDb evidence = ds.value().evidence;

  EngineOptions opts;
  opts.search_mode = SearchMode::kComponentAware;
  opts.grounding.lazy_closure = false;  // session grounding semantics
  opts.total_flips = 80000;
  opts.wal_dir = wal_dir;
  opts.snapshot_every = 2;

  TuffyEngine engine(program, evidence, opts);
  std::vector<EvidenceDelta> deltas = MakeDeltas(program, evidence);

  if (recover) {
    RecoveryStats rs;
    auto session = engine.RecoverSession(&rs);
    if (!session.ok()) {
      std::fprintf(stderr, "recover: %s\n",
                   session.status().ToString().c_str());
      return 1;
    }
    std::printf("recovered: snapshot %llu (%zu tried), %llu/%llu records "
                "replayed, %llu bytes scanned, %llu torn bytes truncated\n",
                (unsigned long long)rs.snapshot_seq, rs.snapshots_tried,
                (unsigned long long)rs.records_replayed,
                (unsigned long long)rs.wal_records_total,
                (unsigned long long)rs.bytes_scanned,
                (unsigned long long)rs.truncated_bytes);
    // The restored counters say how far the pre-crash process got;
    // finish the stream from there.
    size_t applied = session.value()->stats().deltas_applied;
    if (applied > deltas.size()) {
      std::fprintf(stderr, "recovered %zu deltas, expected at most %zu\n",
                   applied, deltas.size());
      return 1;
    }
    std::printf("crash cost %zu of %zu deltas; re-applying the rest\n",
                deltas.size() - applied, deltas.size());
    for (size_t i = applied; i < deltas.size(); ++i) {
      auto r = session.value()->ApplyDelta(deltas[i]);
      if (!r.ok()) {
        std::fprintf(stderr, "re-apply delta %zu: %s\n", i,
                     r.status().ToString().c_str());
        return 1;
      }
    }
    for (const EvidenceDelta& delta : deltas) FoldDelta(delta, &evidence);
    EngineOptions fresh_opts = opts;
    fresh_opts.wal_dir.clear();
    TuffyEngine fresh(program, evidence, fresh_opts);
    auto cold = fresh.Run();
    if (!cold.ok()) {
      std::fprintf(stderr, "fresh: %s\n", cold.status().ToString().c_str());
      return 1;
    }
    double warm_cost = session.value()->map_cost();
    double cold_cost = cold.value().total_cost;
    std::printf("post-recovery cost %.4f, from-scratch cost %.4f\n",
                warm_cost, cold_cost);
    if (std::fabs(warm_cost - cold_cost) > 1e-6) {
      std::fprintf(stderr, "MISMATCH after recovery: warm %.6f cold %.6f\n",
                   warm_cost, cold_cost);
      return 1;
    }
    std::printf("recovery smoke OK: recovered session == from-scratch "
                "Infer over the full stream\n");
    return 0;
  }

  if (!crash_at.empty()) {
    Status armed = ArmFaultFromSpec(crash_at);
    if (!armed.ok()) {
      std::fprintf(stderr, "-crash_at: %s\n", armed.ToString().c_str());
      return 2;
    }
  }

  auto session = engine.OpenSession();
  if (!session.ok()) {
    std::fprintf(stderr, "open: %s\n", session.status().ToString().c_str());
    return 1;
  }
  std::printf("session open: %zu atoms, %zu clauses, %zu components, "
              "cost %.2f\n",
              session.value()->atoms().num_atoms(),
              session.value()->clauses().size(),
              session.value()->num_components(),
              session.value()->map_cost());

  for (size_t i = 0; i < deltas.size(); ++i) {
    auto r = session.value()->ApplyDelta(deltas[i]);
    if (!r.ok()) {
      std::fprintf(stderr, "delta %zu: %s\n", i,
                   r.status().ToString().c_str());
      return 1;
    }
    FoldDelta(deltas[i], &evidence);

    EngineOptions fresh_opts = opts;
    fresh_opts.wal_dir.clear();
    TuffyEngine fresh(program, evidence, fresh_opts);
    auto cold = fresh.Run();
    if (!cold.ok()) {
      std::fprintf(stderr, "fresh %zu: %s\n", i,
                   cold.status().ToString().c_str());
      return 1;
    }
    double warm_cost = r.value().map_cost;
    double cold_cost = cold.value().total_cost;
    std::printf("delta %zu: %zu/%zu components re-searched, warm cost %.4f, "
                "cold cost %.4f\n",
                i, r.value().components_dirty, r.value().components_total,
                warm_cost, cold_cost);
    if (std::fabs(warm_cost - cold_cost) > 1e-6) {
      std::fprintf(stderr, "MISMATCH after delta %zu: warm %.6f cold %.6f\n",
                   i, warm_cost, cold_cost);
      return 1;
    }
    if (std::fabs(warm_cost - session.value()->EvalCurrentCost()) > 1e-9) {
      std::fprintf(stderr, "BOOKKEEPING DRIFT after delta %zu\n", i);
      return 1;
    }
  }
  std::printf("serving smoke OK: 3 deltas, session MAP == from-scratch "
              "Infer throughout\n");
  return 0;
}
