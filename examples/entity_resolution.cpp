// Entity resolution: deduplicating citation records with an MLN, the ER
// workload of the paper's evaluation (Section 4). Similarity evidence
// votes for sameBib pairs; a transitivity rule makes the MRF one dense
// component; a negative-weight prior keeps the matching sparse.
//
// The example also demonstrates the partitioning trade-off of Section
// 3.4: on a dense graph, aggressive partitioning cuts many clauses and
// Gauss-Seidel converges more slowly (Figure 6's ER panel).
//
// Run:  ./build/examples/entity_resolution

#include <cstdio>
#include <map>

#include "datagen/datasets.h"
#include "exec/tuffy_engine.h"
#include "util/mem_tracker.h"
#include "util/union_find.h"

using namespace tuffy;  // NOLINT: example brevity

int main() {
  ErParams params;
  params.num_records = 24;
  params.num_entities = 6;
  params.noise = 0.02;
  auto dataset = MakeErDataset(params);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  Dataset ds = dataset.TakeValue();
  std::printf("ER instance: %d records of %d true entities, %zu evidence\n",
              params.num_records, params.num_entities,
              ds.evidence.num_evidence());

  EngineOptions options;
  options.total_flips = 300000;
  options.search_mode = SearchMode::kInMemory;  // one dense component
  TuffyEngine engine(ds.program, ds.evidence, options);
  auto result = engine.Run();
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  const EngineResult& r = result.value();
  std::printf("grounded %zu atoms / %zu clauses in %.3f s; MAP cost %.1f\n",
              r.grounding.atoms.num_atoms(),
              r.grounding.clauses.num_clauses(), r.grounding_seconds,
              r.total_cost);

  // Turn the sameBib MAP assignment into duplicate clusters.
  auto pairs = ExtractTrueAtoms(ds.program, r.grounding.atoms, r.truth,
                                "sameBib");
  if (!pairs.ok()) {
    std::fprintf(stderr, "%s\n", pairs.status().ToString().c_str());
    return 1;
  }
  UnionFind uf(ds.program.symbols().num_constants());
  for (const GroundAtom& a : pairs.value()) {
    uf.Union(static_cast<uint32_t>(a.args[0]),
             static_cast<uint32_t>(a.args[1]));
  }
  std::map<uint32_t, std::vector<std::string>> clusters;
  for (int rec = 0; rec < params.num_records; ++rec) {
    std::string name = "B" + std::to_string(rec);
    ConstantId id = ds.program.symbols().Find(name);
    if (id < 0) continue;
    clusters[uf.Find(static_cast<uint32_t>(id))].push_back(name);
  }
  std::printf("\nresolved %zu duplicate clusters "
              "(true entity count: %d):\n",
              clusters.size(), params.num_entities);
  int shown = 0;
  for (const auto& [root, members] : clusters) {
    if (members.size() < 2) continue;
    std::printf("  {");
    for (size_t i = 0; i < members.size(); ++i) {
      std::printf("%s%s", i ? ", " : "", members[i].c_str());
    }
    std::printf("}\n");
    if (++shown >= 8) break;
  }

  // Partitioning trade-off on a dense graph (Section 3.4 / Figure 6).
  std::printf("\npartitioning trade-off (dense graph):\n");
  for (uint64_t budget : {uint64_t{0}, uint64_t{4096}, uint64_t{1024}}) {
    EngineOptions popts = options;
    popts.search_mode = SearchMode::kPartitionAware;
    popts.memory_budget_bytes = budget;
    popts.total_flips = 100000;
    popts.rounds = 4;
    TuffyEngine pengine(ds.program, ds.evidence, popts);
    auto presult = pengine.Run();
    if (!presult.ok()) continue;
    std::printf("  budget %8s: %3zu partitions, peak RAM %8s, cost %.1f\n",
                budget == 0 ? "none" : FormatBytes(budget).c_str(),
                presult.value().num_partitions,
                FormatBytes(presult.value().peak_search_bytes).c_str(),
                presult.value().total_cost);
  }
  return 0;
}
