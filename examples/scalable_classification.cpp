// Scalable relational classification: the RC workload at a size where the
// paper's machinery matters. Shows the full hybrid pipeline (Section 3.2)
// plus component-aware search (Section 3.3), and contrasts it against the
// Alchemy-style baseline (top-down grounding + whole-MRF WalkSAT).
//
// Run:  ./build/examples/scalable_classification

#include <cstdio>

#include "datagen/datasets.h"
#include "exec/tuffy_engine.h"
#include "util/mem_tracker.h"

using namespace tuffy;  // NOLINT: example brevity

namespace {

void Report(const char* name, const EngineResult& r) {
  std::printf(
      "%-22s ground %6.2fs  search %6.2fs  cost %8.1f  "
      "flips/s %9.0f  components %4zu  peak search RAM %s\n",
      name, r.grounding_seconds, r.search_seconds, r.total_cost,
      r.FlipsPerSecond(), r.num_components,
      FormatBytes(static_cast<int64_t>(r.peak_search_bytes)).c_str());
}

}  // namespace

int main() {
  RcParams params;
  params.num_clusters = 60;
  params.papers_per_cluster = 12;
  params.num_categories = 8;
  auto dataset = MakeRcDataset(params);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  Dataset ds = dataset.TakeValue();
  std::printf("RC instance: %d papers in %d clusters, %zu evidence tuples\n\n",
              params.num_clusters * params.papers_per_cluster,
              params.num_clusters, ds.evidence.num_evidence());

  const uint64_t kFlips = 2000000;

  // Alchemy-style baseline: top-down grounding, whole-MRF WalkSAT.
  EngineOptions alchemy;
  alchemy.grounding_mode = GroundingMode::kTopDown;
  alchemy.search_mode = SearchMode::kInMemory;
  alchemy.total_flips = kFlips;
  {
    TuffyEngine engine(ds.program, ds.evidence, alchemy);
    auto r = engine.Run();
    if (!r.ok()) {
      std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
      return 1;
    }
    Report("Alchemy (baseline)", r.value());
  }

  // Tuffy-p: bottom-up grounding, whole-MRF WalkSAT.
  EngineOptions tuffy_p;
  tuffy_p.search_mode = SearchMode::kInMemory;
  tuffy_p.total_flips = kFlips;
  {
    TuffyEngine engine(ds.program, ds.evidence, tuffy_p);
    auto r = engine.Run();
    if (!r.ok()) return 1;
    Report("Tuffy-p (no parts)", r.value());
  }

  // Full Tuffy: component-aware search, 8 threads.
  EngineOptions tuffy;
  tuffy.search_mode = SearchMode::kComponentAware;
  tuffy.total_flips = kFlips;
  tuffy.num_threads = 8;
  {
    TuffyEngine engine(ds.program, ds.evidence, tuffy);
    auto r = engine.Run();
    if (!r.ok()) return 1;
    Report("Tuffy (8 threads)", r.value());
  }

  // Full Tuffy under a tight memory budget (partition-aware search).
  EngineOptions budgeted = tuffy;
  budgeted.search_mode = SearchMode::kPartitionAware;
  budgeted.memory_budget_bytes = 64 * 1024;
  budgeted.rounds = 4;
  {
    TuffyEngine engine(ds.program, ds.evidence, budgeted);
    auto r = engine.Run();
    if (!r.ok()) return 1;
    Report("Tuffy (64KB budget)", r.value());
    std::printf("  -> %zu partitions under the budget\n",
                r.value().num_partitions);
  }
  return 0;
}
