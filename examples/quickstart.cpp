// Quickstart: the paper-classification MLN of Figure 1, end to end.
//
// Builds the program from Alchemy-style text, supplies a little evidence,
// runs MAP inference through the full Tuffy pipeline (bottom-up grounding
// in the embedded relational engine, component-aware WalkSAT), and prints
// the most likely category labels.
//
// Run:  ./build/examples/quickstart

#include <cstdio>

#include "exec/tuffy_engine.h"
#include "mln/parser.h"

using namespace tuffy;  // NOLINT: example brevity

int main() {
  // 1. The MLN program: schema + weighted rules (Figure 1).
  const char* kProgram = R"(
    // closed-world evidence relations
    *wrote(author, paper)
    *refers(paper, paper)
    // the query relation: which category is each paper in?
    cat(paper, category)

    // a paper is in one category
    5 cat(p, c1), cat(p, c2) => c1 = c2
    // same author => same category
    1 wrote(x, p1), wrote(x, p2), cat(p1, c) => cat(p2, c)
    // citation => same category
    2 cat(p1, c), refers(p1, p2) => cat(p2, c)
    // few papers are about networking
    -1 cat(p, "Networking")
  )";

  // 2. Evidence: authorship, citations, and a few known labels.
  const char* kEvidence = R"(
    wrote(Joe, P1)
    wrote(Joe, P2)
    wrote(Jake, P3)
    wrote(Jake, P4)
    refers(P1, P3)
    refers(P4, P5)
    cat(P2, "DB")
    cat(P3, "AI")
  )";

  auto program_result = ParseProgram(kProgram);
  if (!program_result.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 program_result.status().ToString().c_str());
    return 1;
  }
  MlnProgram program = program_result.TakeValue();
  // Make sure the category domain contains every label we may assign.
  program.symbols().Intern("DB", "category");
  program.symbols().Intern("AI", "category");
  program.symbols().Intern("Networking", "category");

  EvidenceDb evidence;
  Status st = ParseEvidence(kEvidence, &program, &evidence);
  if (!st.ok()) {
    std::fprintf(stderr, "evidence error: %s\n", st.ToString().c_str());
    return 1;
  }

  // 3. Run MAP inference.
  EngineOptions options;
  options.total_flips = 100000;
  options.search_mode = SearchMode::kComponentAware;
  TuffyEngine engine(program, evidence, options);
  auto result = engine.Run();
  if (!result.ok()) {
    std::fprintf(stderr, "inference error: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  const EngineResult& r = result.value();

  std::printf("grounding: %zu atoms, %zu clauses in %.3f s\n",
              r.grounding.atoms.num_atoms(),
              r.grounding.clauses.num_clauses(), r.grounding_seconds);
  std::printf("search:    cost %.2f after %llu flips (%zu components)\n",
              r.total_cost, (unsigned long long)r.flips, r.num_components);

  // 4. Read out the answer: the most likely category labels.
  auto labels = ExtractTrueAtoms(program, r.grounding.atoms, r.truth, "cat");
  if (!labels.ok()) {
    std::fprintf(stderr, "%s\n", labels.status().ToString().c_str());
    return 1;
  }
  std::printf("\nMAP labels:\n");
  for (const GroundAtom& atom : labels.value()) {
    std::printf("  cat(%s, %s)\n",
                program.symbols().SymbolName(atom.args[0]).c_str(),
                program.symbols().SymbolName(atom.args[1]).c_str());
  }
  return 0;
}
