// weight_learning: end-to-end learn → infer round trip on a synthetic
// relational-classification dataset (the Figure 1 program).
//
// The demo erases the hand-tuned rule weights, learns them back from the
// labeled fraction of the data with diagonal Newton (MC-SAT expected
// counts), applies them with MlnProgram::SetClauseWeight, and runs MAP
// inference with the *learned* program on the unlabeled evidence. The
// prediction accuracy on the withheld labels is compared against
// inference with the original generating weights.
//
//   ./build/weight_learning

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "datagen/datasets.h"
#include "exec/tuffy_engine.h"
#include "learn/learner.h"
#include "util/string_util.h"

using namespace tuffy;  // NOLINT: example brevity

namespace {

/// Fraction of the label atoms that the MAP state predicts true.
double LabelAccuracy(const MlnProgram& program, const GroundingResult& g,
                     const std::vector<uint8_t>& truth,
                     const EvidenceDb& labels) {
  int total = 0;
  int correct = 0;
  for (const auto& [atom, label_true] : labels.entries()) {
    if (!label_true) continue;
    ++total;
    AtomId id;
    if (!g.atoms.Find(atom, &id)) continue;  // never grounded: predicted false
    if (id < truth.size() && truth[id] != 0) ++correct;
  }
  return total > 0 ? static_cast<double>(correct) / total : 0.0;
}

EngineOptions InferOptions() {
  EngineOptions opts;
  opts.total_flips = 200000;
  opts.seed = 5;
  return opts;
}

/// MAP inference + accuracy of the cat predictions vs the withheld labels.
double InferAndScore(const MlnProgram& program, const EvidenceDb& evidence,
                     const EvidenceDb& labels, const char* tag) {
  TuffyEngine engine(program, evidence, InferOptions());
  auto result = engine.Run();
  if (!result.ok()) {
    std::fprintf(stderr, "%s inference failed: %s\n", tag,
                 result.status().ToString().c_str());
    std::exit(1);
  }
  double acc = LabelAccuracy(program, result.value().grounding,
                             result.value().truth, labels);
  std::printf("%-20s cost=%.2f  accuracy on withheld labels: %.3f\n", tag,
              result.value().total_cost, acc);
  return acc;
}

}  // namespace

int main() {
  // A relational-classification world with ~60% of the papers labeled.
  RcParams params;
  params.num_clusters = 6;
  params.papers_per_cluster = 8;
  params.num_categories = 4;
  params.labeled_fraction = 0.6;
  auto ds = MakeRcDataset(params);
  if (!ds.ok()) {
    std::fprintf(stderr, "datagen failed: %s\n",
                 ds.status().ToString().c_str());
    return 1;
  }
  MlnProgram& program = ds.value().program;
  const EvidenceDb& full = ds.value().evidence;

  // Withhold the cat labels: they are the training targets.
  auto split = SplitEvidenceForLearning(program, full, {"cat"});
  if (!split.ok()) {
    std::fprintf(stderr, "split failed: %s\n",
                 split.status().ToString().c_str());
    return 1;
  }

  // Transductive evaluation split: half of the labeled papers keep
  // their label as inference-time evidence (the seeds the relational
  // rules propagate from), the other half is withheld for scoring.
  // Learning itself uses *all* labels (TuffyEngine::Learn re-splits).
  std::vector<GroundAtom> label_atoms;
  for (const auto& [atom, truth] : split.value().labels.entries()) {
    if (truth) label_atoms.push_back(atom);
  }
  std::sort(label_atoms.begin(), label_atoms.end(),
            [](const GroundAtom& a, const GroundAtom& b) {
              return a.args < b.args;
            });
  EvidenceDb infer_evidence = split.value().evidence;
  EvidenceDb held_labels;
  for (size_t i = 0; i < label_atoms.size(); ++i) {
    if (i % 2 == 0) {
      infer_evidence.Add(label_atoms[i], true);
    } else {
      held_labels.Add(label_atoms[i], true);
    }
  }

  std::printf(
      "== weight learning on %s: %zu evidence atoms, %zu labels "
      "(%zu seed / %zu held) ==\n",
      ds.value().name.c_str(), split.value().evidence.num_evidence(),
      label_atoms.size(), label_atoms.size() - held_labels.num_evidence(),
      held_labels.num_evidence());

  // Reference: inference with the hand-tuned generating weights.
  double reference =
      InferAndScore(program, infer_evidence, held_labels, "generating weights");

  // Erase the soft weights; the learner must recover them from data.
  std::vector<double> generating;
  for (size_t r = 0; r < program.clauses().size(); ++r) {
    generating.push_back(program.clauses()[r].weight);
    if (!program.clauses()[r].hard) program.SetClauseWeight(r, 0.0);
  }

  LearnOptions lopts;
  lopts.algorithm = LearnAlgorithm::kDiagonalNewton;
  lopts.query_predicates = {"cat"};
  lopts.max_epochs = 40;
  lopts.mcsat_samples = 100;
  lopts.mcsat_burn_in = 10;
  lopts.seed = 17;
  TuffyEngine learn_engine(program, full, InferOptions());
  auto learned = learn_engine.Learn(lopts);
  if (!learned.ok()) {
    std::fprintf(stderr, "learning failed: %s\n",
                 learned.status().ToString().c_str());
    return 1;
  }
  const LearnResult& lr = learned.value();
  std::printf("learned %d epochs (%s) over %zu ground clauses in %.2fs\n",
              lr.epochs, lr.converged ? "converged" : "budget exhausted",
              lr.num_ground_clauses, lr.seconds);
  for (size_t r = 0; r < lr.weights.size(); ++r) {
    std::printf("  rule %zu: generating %+6.2f  learned %+6.2f\n", r,
                generating[r], lr.weights[r]);
  }

  // Apply the learned weights and close the loop: infer with them.
  for (size_t r = 0; r < lr.weights.size(); ++r) {
    if (!program.clauses()[r].hard) program.SetClauseWeight(r, lr.weights[r]);
  }
  double learned_acc =
      InferAndScore(program, infer_evidence, held_labels, "learned weights");

  // The learned model must be competitive with the generating one (and
  // far better than chance at 1/num_categories). Gate for CI.
  if (learned_acc + 0.15 < reference || learned_acc < 0.4) {
    std::fprintf(stderr,
                 "FAIL: learned accuracy %.3f too far below reference %.3f\n",
                 learned_acc, reference);
    return 1;
  }
  std::printf("round trip OK: learned %.3f vs reference %.3f\n", learned_acc,
              reference);
  return 0;
}
