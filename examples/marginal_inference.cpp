// Marginal inference with MC-SAT (Appendix A.5): instead of the single
// most likely world, estimate per-atom probabilities P(atom = true).
//
// The example grounds a small classification program, runs MC-SAT, and
// compares the estimates with exact enumeration over all worlds (the
// problem is kept tiny so the exact answer is computable).
//
// Run:  ./build/examples/marginal_inference

#include <cstdio>

#include "ground/bottom_up_grounder.h"
#include "infer/brute_force.h"
#include "infer/mcsat.h"
#include "mln/parser.h"

using namespace tuffy;  // NOLINT: example brevity

int main() {
  const char* kProgram = R"(
    *cites(paper, paper)
    cat(paper, category)
    2 cat(p, c1), cat(p, c2) => c1 = c2
    1.5 cat(p1, c), cites(p1, p2) => cat(p2, c)
    0.5 cat(p, "DB")
  )";
  const char* kEvidence = R"(
    cat(P0, "DB")
    cites(P0, P1)
    cites(P1, P2)
  )";

  auto program_result = ParseProgram(kProgram);
  if (!program_result.ok()) {
    std::fprintf(stderr, "%s\n", program_result.status().ToString().c_str());
    return 1;
  }
  MlnProgram program = program_result.TakeValue();
  program.symbols().Intern("DB", "category");
  program.symbols().Intern("AI", "category");
  EvidenceDb evidence;
  Status st = ParseEvidence(kEvidence, &program, &evidence);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  BottomUpGrounder grounder(program, evidence);
  auto grounding = grounder.Ground();
  if (!grounding.ok()) {
    std::fprintf(stderr, "%s\n", grounding.status().ToString().c_str());
    return 1;
  }
  const GroundingResult& g = grounding.value();
  std::printf("grounded %zu query atoms, %zu clauses\n",
              g.atoms.num_atoms(), g.clauses.num_clauses());

  Problem problem =
      MakeWholeProblem(g.atoms.num_atoms(), g.clauses.clauses());

  McSatOptions options;
  options.num_samples = 4000;
  options.burn_in = 200;
  McSatResult mcsat = RunMcSat(problem, options, /*seed=*/7);

  auto exact = ExactMarginals(problem);
  std::printf("\n%-24s %10s %10s\n", "atom", "MC-SAT", "exact");
  for (AtomId a = 0; a < g.atoms.num_atoms(); ++a) {
    std::printf("%-24s %10.3f", g.atoms.AtomName(program, a).c_str(),
                mcsat.marginals[a]);
    if (exact.ok()) {
      std::printf(" %10.3f", exact.value()[a]);
    } else {
      std::printf(" %10s", "n/a");
    }
    std::printf("\n");
  }
  std::printf("\n(%d MC-SAT samples after %d burn-in rounds)\n",
              mcsat.samples_used, options.burn_in);
  return 0;
}
