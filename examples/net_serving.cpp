// Network serving smoke: start the net/ front end in-process on an
// ephemeral loopback port, drive it with the blocking client — open a
// session, stream two evidence deltas, query marginals and the MAP
// state — and verify the served MAP cost equals a from-scratch
// TuffyEngine run over the accumulated evidence. Exits non-zero on any
// mismatch, so CI can use it as the wire-equivalence gate.

#include <cmath>
#include <cstdio>
#include <vector>

#include "datagen/datasets.h"
#include "durability/snapshot.h"
#include "exec/tuffy_engine.h"
#include "net/client.h"
#include "net/server.h"

using namespace tuffy;  // NOLINT: example brevity

namespace {

GroundAtom CatAtom(const MlnProgram& program, const char* paper,
                   const char* category) {
  GroundAtom atom;
  atom.pred = program.FindPredicate("cat").value();
  atom.args = {program.symbols().Find(paper),
               program.symbols().Find(category)};
  return atom;
}

void FoldDelta(const EvidenceDelta& delta, EvidenceDb* evidence) {
  for (const auto& [atom, truth] : delta.assertions) {
    evidence->Add(atom, truth);
  }
  for (const GroundAtom& atom : delta.retractions) {
    evidence->Remove(atom);
  }
}

}  // namespace

int main() {
  RcParams params;
  params.num_clusters = 4;
  params.papers_per_cluster = 6;
  params.num_categories = 3;
  params.labeled_fraction = 0.6;
  auto ds = MakeRcDataset(params);
  if (!ds.ok()) {
    std::fprintf(stderr, "dataset: %s\n", ds.status().ToString().c_str());
    return 1;
  }
  MlnProgram& program = ds.value().program;
  EvidenceDb evidence = ds.value().evidence;

  ServerOptions opts;
  opts.session.total_flips = 80000;
  opts.session.seed = 42;
  opts.session.track_marginals = true;
  Server server(program, evidence, opts);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "server start: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("server listening on 127.0.0.1:%u\n", server.port());

  Client client;
  Status connected = client.Connect("127.0.0.1", server.port());
  if (!connected.ok()) {
    std::fprintf(stderr, "connect: %s\n", connected.ToString().c_str());
    return 1;
  }

  auto check = [](const char* what,
                  const Result<NetResponse>& r) -> const NetResponse& {
    if (!r.ok()) {
      std::fprintf(stderr, "%s transport error: %s\n", what,
                   r.status().ToString().c_str());
      std::exit(1);
    }
    if (r.value().type == MsgType::kError) {
      std::fprintf(stderr, "%s wire error: %s (%s)\n", what,
                   WireErrorName(r.value().error),
                   r.value().message.c_str());
      std::exit(1);
    }
    return r.value();
  };

  const NetResponse& open =
      check("open", client.OpenSession("demo", ProgramFingerprint(program)));
  std::printf("opened session: %llu atoms, %llu clauses, %llu components, "
              "cost %.4f\n",
              (unsigned long long)open.num_atoms,
              (unsigned long long)open.num_clauses,
              (unsigned long long)open.num_components, open.map_cost);

  // Two deltas: relabel one paper, bridge two clusters.
  std::vector<EvidenceDelta> deltas(2);
  GroundAtom some_label;
  for (const auto& [atom, truth] : evidence.entries()) {
    if (atom.pred == program.FindPredicate("cat").value() && truth) {
      some_label = atom;
      break;
    }
  }
  deltas[0].Retract(some_label);
  deltas[0].Assert(CatAtom(program, "P0", "Networking"), true);
  GroundAtom bridge;
  bridge.pred = program.FindPredicate("refers").value();
  bridge.args = {program.symbols().Find("P0"),
                 program.symbols().Find("P11")};
  deltas[1].Assert(bridge, true);

  EvidenceDb accumulated = evidence;
  double served_cost = 0.0;
  for (size_t i = 0; i < deltas.size(); ++i) {
    const NetResponse& applied =
        check("delta", client.ApplyDelta("demo", deltas[i]));
    FoldDelta(deltas[i], &accumulated);
    served_cost = applied.map_cost;
    std::printf("delta %zu: seq %llu, %llu/%llu components re-searched, "
                "%llu flips, cost %.4f\n",
                i, (unsigned long long)applied.seq,
                (unsigned long long)applied.components_dirty,
                (unsigned long long)applied.components_total,
                (unsigned long long)applied.flips, applied.map_cost);
  }

  const NetResponse& marginals =
      check("marginals", client.QueryMarginals("demo", "cat"));
  std::printf("marginals: %zu cat atoms tracked\n",
              marginals.marginals.size());
  if (marginals.marginals.empty()) {
    std::fprintf(stderr, "expected nonempty marginals\n");
    return 1;
  }

  const NetResponse& map = check("map", client.QueryMap("demo", "cat"));
  std::printf("MAP: cost %.4f, %zu true cat atoms\n", map.map_cost,
              map.atoms.size());
  if (map.map_cost != served_cost) {
    std::fprintf(stderr, "MAP query cost %.6f != last delta cost %.6f\n",
                 map.map_cost, served_cost);
    return 1;
  }

  // Equivalence: a from-scratch run over the accumulated evidence.
  EngineOptions eopts;
  eopts.search_mode = SearchMode::kComponentAware;
  eopts.grounding.lazy_closure = false;  // session grounding semantics
  eopts.total_flips = 80000;
  TuffyEngine engine(program, accumulated, eopts);
  auto fresh = engine.Run();
  if (!fresh.ok()) {
    std::fprintf(stderr, "fresh run: %s\n",
                 fresh.status().ToString().c_str());
    return 1;
  }
  std::printf("fresh cost %.4f vs served %.4f\n", fresh.value().total_cost,
              served_cost);
  if (std::fabs(fresh.value().total_cost - served_cost) > 1e-6) {
    std::fprintf(stderr, "served MAP cost diverged from fresh run\n");
    return 1;
  }

  check("close", client.CloseSession("demo"));
  client.Disconnect();
  server.Stop();
  std::printf("%s", server.MetricsReport().c_str());
  std::printf("net serving smoke OK\n");
  return 0;
}
