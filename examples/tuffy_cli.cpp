// tuffy_cli: command-line MLN inference, in the spirit of the original
// Tuffy release. Reads a program (.mln) and evidence (.db) file, runs MAP
// or marginal inference, and prints (or writes) the query relation.
//
// Usage:
//   tuffy_cli -i prog.mln -e evidence.db -q query_pred [options]
//
// Options:
//   -i FILE        MLN program file (required)
//   -e FILE        evidence file (required)
//   -q PRED        query predicate to report (required; repeatable)
//   -o FILE        write results to FILE instead of stdout
//   -marginal      marginal inference (MC-SAT) instead of MAP
//   -flips N       WalkSAT flip budget (default 1000000)
//   -threads N     worker threads (default 1)
//   -budget BYTES  memory budget for search state (default unlimited)
//   -mode M        search mode: component (default), memory, partition,
//                  disk
//   -topdown       use the Alchemy-style top-down grounder
//   -seed N        RNG seed (default 42)
//
// Example:
//   ./build/examples/tuffy_cli -i prog.mln -e facts.db -q cat

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "exec/tuffy_engine.h"
#include "mln/io.h"
#include "util/string_util.h"

using namespace tuffy;  // NOLINT: example brevity

namespace {

struct CliArgs {
  std::string program_file;
  std::string evidence_file;
  std::vector<std::string> query_preds;
  std::string output_file;
  bool marginal = false;
  EngineOptions engine;
};

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s -i prog.mln -e evidence.db -q query_pred "
               "[-o out] [-marginal] [-flips N] [-threads N] "
               "[-budget BYTES] [-mode component|memory|partition|disk] "
               "[-topdown] [-seed N]\n",
               argv0);
  return 2;
}

bool ParseArgs(int argc, char** argv, CliArgs* args) {
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "-i") {
      const char* v = next();
      if (!v) return false;
      args->program_file = v;
    } else if (a == "-e") {
      const char* v = next();
      if (!v) return false;
      args->evidence_file = v;
    } else if (a == "-q") {
      const char* v = next();
      if (!v) return false;
      args->query_preds.push_back(v);
    } else if (a == "-o") {
      const char* v = next();
      if (!v) return false;
      args->output_file = v;
    } else if (a == "-marginal") {
      args->marginal = true;
      args->engine.task = InferenceTask::kMarginal;
    } else if (a == "-flips") {
      const char* v = next();
      if (!v) return false;
      args->engine.total_flips = std::strtoull(v, nullptr, 10);
    } else if (a == "-threads") {
      const char* v = next();
      if (!v) return false;
      args->engine.num_threads = std::atoi(v);
    } else if (a == "-budget") {
      const char* v = next();
      if (!v) return false;
      args->engine.memory_budget_bytes = std::strtoull(v, nullptr, 10);
    } else if (a == "-mode") {
      const char* v = next();
      if (!v) return false;
      std::string mode = v;
      if (mode == "component") {
        args->engine.search_mode = SearchMode::kComponentAware;
      } else if (mode == "memory") {
        args->engine.search_mode = SearchMode::kInMemory;
      } else if (mode == "partition") {
        args->engine.search_mode = SearchMode::kPartitionAware;
      } else if (mode == "disk") {
        args->engine.search_mode = SearchMode::kDisk;
      } else {
        return false;
      }
    } else if (a == "-topdown") {
      args->engine.grounding_mode = GroundingMode::kTopDown;
    } else if (a == "-seed") {
      const char* v = next();
      if (!v) return false;
      args->engine.seed = std::strtoull(v, nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", a.c_str());
      return false;
    }
  }
  return !args->program_file.empty() && !args->evidence_file.empty() &&
         !args->query_preds.empty();
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args;
  if (!ParseArgs(argc, argv, &args)) return Usage(argv[0]);

  auto program_result = LoadProgramFile(args.program_file);
  if (!program_result.ok()) {
    std::fprintf(stderr, "%s: %s\n", args.program_file.c_str(),
                 program_result.status().ToString().c_str());
    return 1;
  }
  MlnProgram program = program_result.TakeValue();
  EvidenceDb evidence;
  Status st = LoadEvidenceFile(args.evidence_file, &program, &evidence);
  if (!st.ok()) {
    std::fprintf(stderr, "%s: %s\n", args.evidence_file.c_str(),
                 st.ToString().c_str());
    return 1;
  }

  TuffyEngine engine(program, evidence, args.engine);
  auto result = engine.Run();
  if (!result.ok()) {
    std::fprintf(stderr, "inference failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  const EngineResult& r = result.value();
  std::fprintf(stderr,
               "grounding: %zu atoms, %zu clauses, %.3fs; search: %.3fs, "
               "%llu flips, cost %.2f, %zu components\n",
               r.grounding.atoms.num_atoms(),
               r.grounding.clauses.num_clauses(), r.grounding_seconds,
               r.search_seconds, (unsigned long long)r.flips, r.total_cost,
               r.num_components);

  std::string out;
  for (const std::string& pred_name : args.query_preds) {
    auto pid = program.FindPredicate(pred_name);
    if (!pid.ok()) {
      std::fprintf(stderr, "unknown query predicate %s\n",
                   pred_name.c_str());
      return 1;
    }
    for (AtomId a = 0; a < r.grounding.atoms.num_atoms(); ++a) {
      if (r.grounding.atoms.atom(a).pred != pid.value()) continue;
      if (args.marginal) {
        out += StrFormat("%.4f\t", r.marginals[a]);
        out += r.grounding.atoms.AtomName(program, a);
        out += "\n";
      } else if (a < r.truth.size() && r.truth[a] != 0) {
        out += r.grounding.atoms.AtomName(program, a);
        out += "\n";
      }
    }
  }
  if (args.output_file.empty()) {
    std::fputs(out.c_str(), stdout);
  } else {
    Status write = WriteStringToFile(args.output_file, out);
    if (!write.ok()) {
      std::fprintf(stderr, "%s\n", write.ToString().c_str());
      return 1;
    }
  }
  return 0;
}
