// tuffy_cli: command-line MLN inference and weight learning, in the
// spirit of the original Tuffy release. Reads a program (.mln) and
// evidence (.db) file — or generates a built-in synthetic dataset — and
// runs MAP inference, marginal inference, or weight learning.
//
// Usage:
//   tuffy_cli -i prog.mln -e evidence.db -q query_pred [options]
//   tuffy_cli -gen rc -learnwt
//
// Options:
//   -i FILE        MLN program file
//   -e FILE        evidence file
//   -gen NAME      generate a tiny built-in dataset instead of -i/-e:
//                  rc, ie, lp, or er (default query predicate implied)
//   -q PRED        query predicate to report / learn (repeatable)
//   -o FILE        write results to FILE instead of stdout
//   -marginal      marginal inference (MC-SAT) instead of MAP
//   -session       open a long-lived serving session instead of a batch
//                  run, then read delta commands from stdin (see
//                  docs/SERVING.md):
//                    assert pred(a,b) [false]   stage an assertion
//                    retract pred(a,b)          stage a retraction
//                    apply                      apply staged delta
//                    cost                       print current MAP cost
//                    query PRED                 print true atoms of PRED
//                    marginals PRED             per-atom P(true) (-marginal)
//                    stats                      session counters
//                    recover                    drop resident state and
//                                               rebuild from -wal_dir
//                    quit
//   -learnwt       learn clause weights from the evidence: the -q
//                  predicates become training labels, the rest stays
//                  conditioning evidence
//   -algo A        learning algorithm: vp (voted perceptron, default)
//                  or dn (diagonal Newton)
//   -epochs N      learning epochs (default 60)
//   -lr X          learning rate (default 0.5)
//   -flips N       WalkSAT flip budget (default 1000000)
//   -explain       print EXPLAIN ANALYZE of every grounding query to
//                  stderr (per-operator rows / chunks / wall time)
//   -threads N     worker threads (default 1; also parallelizes
//                  per-rule grounding)
//   -budget BYTES  memory budget for search state (default unlimited)
//   -mode M        search mode: component (default), memory, partition,
//                  disk
//   -topdown       use the Alchemy-style top-down grounder
//   -seed N        RNG seed (default 42)
//   -wal_dir DIR   (-session) durable session: log every delta to a WAL
//                  in DIR and snapshot session state there. If DIR
//                  already holds a session, it is recovered instead of
//                  opened fresh. See docs/DURABILITY.md.
//   -snapshot_every N  (-session) snapshot after every N effective
//                  deltas (default 0: initial snapshot only)
//   -no_fsync      (-session) skip per-delta WAL fsync (faster; a crash
//                  may lose the OS write-back window)
//   -serve PORT    expose sessions over TCP (src/net/): start the
//                  poll-based server on PORT (0 = ephemeral, the chosen
//                  port is printed), block until SIGINT, then dump the
//                  serving metrics report plus the Prometheus-style
//                  registry text to stderr. SIGUSR1 dumps the registry
//                  text without stopping (a poor man's scrape; see
//                  docs/OBSERVABILITY.md). Fatal signals dump the
//                  flight recorder — to stderr, and to
//                  <wal_dir>/flight_recorder.txt when durable. Session
//                  knobs (-flips, -seed, -marginal, -wal_dir,
//                  -snapshot_every, -no_fsync, -threads, -budget) apply
//                  to every served session.
//   -connect HOST:PORT
//                  drive a remote -serve process instead of an
//                  in-process session: same REPL commands as -session,
//                  sent over the binary wire protocol, plus `metrics`
//                  (server-wide registry text) and `trace` (recent
//                  delta span trees for this session). The local
//                  program (-i/-gen, for atom names and the fingerprint
//                  check) must match the server's.
//   -follow HOST:PORT
//                  run as a hot standby of the durable primary at
//                  HOST:PORT (docs/DURABILITY.md, "Replication &
//                  failover"): subscribe to its session "cli", apply
//                  its shipped WAL records into a local replica rooted
//                  at -wal_dir (required), print "replicated to N"
//                  progress on stderr, and reconnect with backoff when
//                  the primary goes quiet. The REPL serves read-only
//                  queries (cost/query/marginals/status) plus `promote`
//                  — operator failover that seals the local WAL and
//                  makes apply work locally. Combine with -serve PORT
//                  to also front the replica over TCP (deltas are
//                  refused with a retryable not-primary error until
//                  promotion).
//   -crash_at SPEC arm a fault point before running, e.g.
//                  'wal.append.mid_record=crash@2' (see
//                  util/fault_points.h). The process _Exit()s with
//                  code 43 when a crash fault fires.
//
// Examples:
//   ./build/examples/tuffy_cli -i prog.mln -e facts.db -q cat
//   ./build/examples/tuffy_cli -gen rc -learnwt -algo dn -epochs 30
//   ./build/examples/tuffy_cli -gen rc -serve 7777
//   ./build/examples/tuffy_cli -gen rc -connect 127.0.0.1:7777

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "datagen/datasets.h"
#include "durability/snapshot.h"
#include "exec/tuffy_engine.h"
#include "mln/io.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "serve/follower_manager.h"
#include "util/fault_points.h"
#include "util/string_util.h"

using namespace tuffy;  // NOLINT: example brevity

namespace {

struct CliArgs {
  std::string program_file;
  std::string evidence_file;
  std::string gen_dataset;
  std::vector<std::string> query_preds;
  std::string output_file;
  bool marginal = false;
  bool learn = false;
  bool session = false;
  bool explain = false;
  bool serve = false;
  uint16_t serve_port = 0;
  std::string connect;  // "host:port"; empty = no -connect
  std::string follow;   // "host:port"; empty = no -follow
  std::string crash_at;  // fault-point spec to arm at startup
  EngineOptions engine;
  LearnOptions learnwt;
};

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s (-i prog.mln -e evidence.db | -gen rc|ie|lp|er) "
               "-q query_pred [-o out] [-marginal] [-session] [-explain] "
               "[-learnwt] "
               "[-algo vp|dn] [-epochs N] [-lr X] [-flips N] [-threads N] "
               "[-budget BYTES] [-mode component|memory|partition|disk] "
               "[-topdown] [-seed N] [-wal_dir DIR] [-snapshot_every N] "
               "[-no_fsync] [-serve PORT] [-connect HOST:PORT] "
               "[-follow HOST:PORT] [-crash_at SPEC]\n",
               argv0);
  return 2;
}

/// Tiny versions of the datagen workloads, sized so exhaustive
/// grounding (which learning requires) stays sub-second.
Result<Dataset> GenerateDataset(const std::string& name) {
  if (name == "rc") {
    RcParams p;
    p.num_clusters = 4;
    p.papers_per_cluster = 6;
    p.num_categories = 3;
    p.authors_per_cluster = 3;
    p.citations_per_paper = 2;
    p.labeled_fraction = 0.6;
    return MakeRcDataset(p);
  }
  if (name == "ie") {
    IeParams p;
    p.num_citations = 20;
    p.positions_per_citation = 3;
    p.num_fields = 3;
    p.vocabulary = 15;
    p.num_token_rules = 20;
    return MakeIeDataset(p);
  }
  if (name == "lp") {
    LpParams p;
    p.num_professors = 4;
    p.num_students = 12;
    p.num_courses = 6;
    p.num_publications = 20;
    return MakeLpDataset(p);
  }
  if (name == "er") {
    ErParams p;
    p.num_records = 12;
    p.num_entities = 4;
    return MakeErDataset(p);
  }
  return Status::InvalidArgument("unknown -gen dataset: " + name);
}

/// The natural training target of each built-in dataset.
const char* DefaultQueryPred(const std::string& name) {
  if (name == "rc") return "cat";
  if (name == "ie") return "infield";
  if (name == "lp") return "advisedBy";
  if (name == "er") return "sameBib";
  return "";
}

bool ParseArgs(int argc, char** argv, CliArgs* args) {
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "-i") {
      const char* v = next();
      if (!v) return false;
      args->program_file = v;
    } else if (a == "-e") {
      const char* v = next();
      if (!v) return false;
      args->evidence_file = v;
    } else if (a == "-q") {
      const char* v = next();
      if (!v) return false;
      args->query_preds.push_back(v);
    } else if (a == "-o") {
      const char* v = next();
      if (!v) return false;
      args->output_file = v;
    } else if (a == "-gen") {
      const char* v = next();
      if (!v) return false;
      args->gen_dataset = v;
    } else if (a == "-marginal") {
      args->marginal = true;
      args->engine.task = InferenceTask::kMarginal;
    } else if (a == "-session") {
      args->session = true;
    } else if (a == "-explain") {
      args->explain = true;
      args->engine.optimizer.analyze = true;
    } else if (a == "-learnwt") {
      args->learn = true;
    } else if (a == "-algo") {
      const char* v = next();
      if (!v) return false;
      std::string algo = v;
      if (algo == "vp") {
        args->learnwt.algorithm = LearnAlgorithm::kVotedPerceptron;
      } else if (algo == "dn") {
        args->learnwt.algorithm = LearnAlgorithm::kDiagonalNewton;
      } else {
        return false;
      }
    } else if (a == "-epochs") {
      const char* v = next();
      if (!v) return false;
      args->learnwt.max_epochs = std::atoi(v);
    } else if (a == "-lr") {
      const char* v = next();
      if (!v) return false;
      args->learnwt.learning_rate = std::atof(v);
    } else if (a == "-flips") {
      const char* v = next();
      if (!v) return false;
      args->engine.total_flips = std::strtoull(v, nullptr, 10);
    } else if (a == "-threads") {
      const char* v = next();
      if (!v) return false;
      args->engine.num_threads = std::atoi(v);
    } else if (a == "-budget") {
      const char* v = next();
      if (!v) return false;
      args->engine.memory_budget_bytes = std::strtoull(v, nullptr, 10);
    } else if (a == "-mode") {
      const char* v = next();
      if (!v) return false;
      std::string mode = v;
      if (mode == "component") {
        args->engine.search_mode = SearchMode::kComponentAware;
      } else if (mode == "memory") {
        args->engine.search_mode = SearchMode::kInMemory;
      } else if (mode == "partition") {
        args->engine.search_mode = SearchMode::kPartitionAware;
      } else if (mode == "disk") {
        args->engine.search_mode = SearchMode::kDisk;
      } else {
        return false;
      }
    } else if (a == "-wal_dir") {
      const char* v = next();
      if (!v) return false;
      args->engine.wal_dir = v;
    } else if (a == "-snapshot_every") {
      const char* v = next();
      if (!v) return false;
      args->engine.snapshot_every =
          static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (a == "-no_fsync") {
      args->engine.wal_fsync = false;
    } else if (a == "-serve") {
      const char* v = next();
      if (!v) return false;
      args->serve = true;
      args->serve_port = static_cast<uint16_t>(std::strtoul(v, nullptr, 10));
    } else if (a == "-connect") {
      const char* v = next();
      if (!v) return false;
      args->connect = v;
    } else if (a == "-follow") {
      const char* v = next();
      if (!v) return false;
      args->follow = v;
    } else if (a == "-crash_at") {
      const char* v = next();
      if (!v) return false;
      args->crash_at = v;
    } else if (a == "-topdown") {
      args->engine.grounding_mode = GroundingMode::kTopDown;
    } else if (a == "-seed") {
      const char* v = next();
      if (!v) return false;
      args->engine.seed = std::strtoull(v, nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", a.c_str());
      return false;
    }
  }
  if (!args->gen_dataset.empty()) {
    if (args->query_preds.empty()) {
      const char* pred = DefaultQueryPred(args->gen_dataset);
      if (pred[0] == '\0') return false;  // unknown dataset: usage
      args->query_preds.push_back(pred);
    }
    return true;
  }
  if (args->serve || !args->connect.empty() || !args->follow.empty()) {
    // The wire modes need the program (atom names, fingerprint check);
    // -serve also needs evidence for the sessions' base state, while a
    // -connect client or -follow replica never touches evidence locally
    // (a follower's base state arrives as a shipped snapshot).
    if (!args->follow.empty()) {
      return !args->program_file.empty() && !args->engine.wal_dir.empty();
    }
    return !args->program_file.empty() &&
           (!args->serve || !args->evidence_file.empty());
  }
  return !args->program_file.empty() && !args->evidence_file.empty() &&
         !args->query_preds.empty();
}

/// Writes `out` to -o (if given) or stdout. Returns the process status.
int EmitOutput(const CliArgs& args, const std::string& out) {
  if (args.output_file.empty()) {
    std::fputs(out.c_str(), stdout);
    return 0;
  }
  Status write = WriteStringToFile(args.output_file, out);
  if (!write.ok()) {
    std::fprintf(stderr, "%s\n", write.ToString().c_str());
    return 1;
  }
  return 0;
}

int RunLearn(const CliArgs& args, const MlnProgram& program,
             const EvidenceDb& evidence) {
  LearnOptions lopts = args.learnwt;
  lopts.query_predicates = args.query_preds;
  lopts.seed = args.engine.seed;
  TuffyEngine engine(program, evidence, args.engine);
  auto result = engine.Learn(lopts);
  if (!result.ok()) {
    std::fprintf(stderr, "learning failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  const LearnResult& lr = result.value();
  std::fprintf(stderr,
               "learnwt: %zu atoms, %zu ground clauses, %d epochs "
               "(%s), %.3fs\n",
               lr.num_atoms, lr.num_ground_clauses, lr.epochs,
               lr.converged ? "converged" : "budget exhausted", lr.seconds);
  std::string out;
  for (size_t r = 0; r < lr.weights.size(); ++r) {
    const Clause& rule = program.clauses()[r];
    out += StrFormat("rule %zu: %s%g -> %g  (n_data=%lld, E[n]=%.2f)\n", r,
                     rule.hard ? "hard " : "", lr.initial_weights[r],
                     lr.weights[r],
                     static_cast<long long>(lr.data_counts[r]),
                     r < lr.expected_counts.size() ? lr.expected_counts[r]
                                                   : 0.0);
  }
  return EmitOutput(args, out);
}

// ----------------------------------------------------------- -session

/// Parses "pred(arg1, arg2, ...)" against the program's symbol table.
bool ParseAtomSpec(const MlnProgram& program, const std::string& spec,
                   GroundAtom* atom) {
  size_t open = spec.find('(');
  size_t close = spec.rfind(')');
  if (open == std::string::npos || close == std::string::npos ||
      close < open) {
    std::fprintf(stderr, "bad atom syntax: %s\n", spec.c_str());
    return false;
  }
  auto pid = program.FindPredicate(spec.substr(0, open));
  if (!pid.ok()) {
    std::fprintf(stderr, "unknown predicate in: %s\n", spec.c_str());
    return false;
  }
  atom->pred = pid.value();
  atom->args.clear();
  std::string args = spec.substr(open + 1, close - open - 1);
  size_t pos = 0;
  while (pos <= args.size()) {
    size_t comma = args.find(',', pos);
    std::string tok = args.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    // Trim blanks and optional quotes.
    size_t b = tok.find_first_not_of(" \t\"");
    size_t e = tok.find_last_not_of(" \t\"");
    if (b == std::string::npos) break;
    tok = tok.substr(b, e - b + 1);
    ConstantId c = program.symbols().Find(tok);
    if (c < 0) {
      std::fprintf(stderr,
                   "unknown constant %s (sessions serve the loaded "
                   "universe; see docs/SERVING.md)\n",
                   tok.c_str());
      return false;
    }
    atom->args.push_back(c);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  const Predicate& pred = program.predicate(atom->pred);
  if (atom->args.size() != static_cast<size_t>(pred.arity())) {
    std::fprintf(stderr, "%s expects %d arguments\n", pred.name.c_str(),
                 pred.arity());
    return false;
  }
  return true;
}

void PrintRecoveryStats(const RecoveryStats& rs) {
  std::fprintf(stderr,
               "recovered: snapshot %llu (%zu tried), %llu/%llu records "
               "replayed (%llu from snapshot), %llu bytes scanned, "
               "%llu torn tail bytes truncated\n",
               (unsigned long long)rs.snapshot_seq, rs.snapshots_tried,
               (unsigned long long)rs.records_replayed,
               (unsigned long long)rs.wal_records_total,
               (unsigned long long)rs.records_skipped,
               (unsigned long long)rs.bytes_scanned,
               (unsigned long long)rs.truncated_bytes);
}

/// Handles "assert pred(...) [true|false]" / "retract pred(...)" for
/// both the in-process and the -connect REPL. Anything after the
/// closing paren must be a recognized truth flag — silently dropping a
/// typo like "False" would stage the opposite of what the user meant.
void StageEdit(const MlnProgram& program, const std::string& cmd,
               const std::string& rest, EvidenceDelta* staged) {
  size_t close = rest.rfind(')');
  std::string spec =
      close == std::string::npos ? rest : rest.substr(0, close + 1);
  std::string suffix =
      close == std::string::npos ? "" : rest.substr(close + 1);
  size_t b = suffix.find_first_not_of(" \t");
  size_t e = suffix.find_last_not_of(" \t");
  suffix = b == std::string::npos ? "" : suffix.substr(b, e - b + 1);
  bool truth = true;
  if (cmd == "retract") {
    if (!suffix.empty()) {
      std::fprintf(stderr, "retract takes no flag, got '%s'\n",
                   suffix.c_str());
      return;
    }
  } else if (suffix == "false") {
    truth = false;
  } else if (!suffix.empty() && suffix != "true") {
    std::fprintf(stderr, "expected 'true' or 'false', got '%s'\n",
                 suffix.c_str());
    return;
  }
  GroundAtom atom;
  if (!ParseAtomSpec(program, spec, &atom)) return;
  if (cmd == "assert") {
    staged->Assert(std::move(atom), truth);
  } else {
    staged->Retract(std::move(atom));
  }
  std::fprintf(stderr, "staged (%zu assertions, %zu retractions)\n",
               staged->assertions.size(), staged->retractions.size());
}

/// Interactive serving session: reads delta commands from stdin.
int RunSession(const CliArgs& args, const MlnProgram& program,
               const EvidenceDb& evidence) {
  TuffyEngine engine(program, evidence, args.engine);
  std::unique_ptr<InferenceSession> sess;
  auto session = engine.OpenSession();
  if (session.ok()) {
    sess = session.TakeValue();
  } else if (session.status().code() == StatusCode::kAlreadyExists) {
    // The -wal_dir already holds a session: pick up where it left off.
    RecoveryStats rs;
    auto recovered = engine.RecoverSession(&rs);
    if (!recovered.ok()) {
      std::fprintf(stderr, "session recovery failed: %s\n",
                   recovered.status().ToString().c_str());
      return 1;
    }
    sess = recovered.TakeValue();
    PrintRecoveryStats(rs);
  } else {
    std::fprintf(stderr, "session open failed: %s\n",
                 session.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "session open: %zu atoms, %zu clauses, %zu components, "
               "cost %.2f\n> ",
               sess->atoms().num_atoms(), sess->clauses().size(),
               sess->num_components(), sess->map_cost());

  EvidenceDelta staged;
  std::string line;
  while (std::getline(std::cin, line)) {
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
      line.pop_back();
    }
    size_t sp = line.find(' ');
    std::string cmd = line.substr(0, sp);
    std::string rest = sp == std::string::npos ? "" : line.substr(sp + 1);

    if (cmd.empty()) {
    } else if (cmd == "assert" || cmd == "retract") {
      StageEdit(program, cmd, rest, &staged);
    } else if (cmd == "apply") {
      auto r = sess->ApplyDelta(staged);
      staged = EvidenceDelta{};
      if (!r.ok()) {
        std::fprintf(stderr, "delta failed: %s\n",
                     r.status().ToString().c_str());
      } else {
        std::fprintf(
            stderr,
            "%s: %zu rules re-ground, +%zu/-%zu/~%zu clauses, %zu/%zu "
            "components re-searched, %.3fs ground + %.3fs search, "
            "cost %.2f\n",
            r.value().edits.no_op ? "no-op" : "applied",
            r.value().edits.rules_reground, r.value().edits.clauses_added,
            r.value().edits.clauses_removed,
            r.value().edits.clauses_reweighted, r.value().components_dirty,
            r.value().components_total, r.value().edits.ground_seconds,
            r.value().search_seconds, r.value().map_cost);
      }
    } else if (cmd == "cost") {
      std::fprintf(stderr, "map cost: %.4f\n", sess->map_cost());
    } else if (cmd == "query") {
      auto atoms =
          ExtractTrueAtoms(program, sess->atoms(), sess->truth(), rest);
      if (!atoms.ok()) {
        std::fprintf(stderr, "%s\n", atoms.status().ToString().c_str());
      } else {
        for (const GroundAtom& atom : atoms.value()) {
          AtomId id;
          if (sess->atoms().Find(atom, &id)) {
            std::printf("%s\n", sess->atoms().AtomName(program, id).c_str());
          }
        }
        std::fflush(stdout);
      }
    } else if (cmd == "marginals") {
      if (sess->marginals().empty()) {
        std::fprintf(stderr, "session opened without -marginal\n");
      } else {
        auto pid = program.FindPredicate(rest);
        if (!pid.ok()) {
          std::fprintf(stderr, "unknown predicate %s\n", rest.c_str());
        } else {
          for (AtomId a = 0; a < sess->atoms().num_atoms(); ++a) {
            if (sess->atoms().atom(a).pred != pid.value()) continue;
            std::printf("%.4f\t%s\n", sess->marginals()[a],
                        sess->atoms().AtomName(program, a).c_str());
          }
          std::fflush(stdout);
        }
      }
    } else if (cmd == "recover") {
      if (args.engine.wal_dir.empty()) {
        std::fprintf(stderr, "recover needs -wal_dir\n");
      } else {
        // Drop the resident state on the floor — the WAL is the record —
        // and rebuild from disk, exactly as a restarted process would.
        sess.reset();
        RecoveryStats rs;
        auto recovered = engine.RecoverSession(&rs);
        if (!recovered.ok()) {
          std::fprintf(stderr, "recovery failed: %s\n",
                       recovered.status().ToString().c_str());
          return 1;
        }
        sess = recovered.TakeValue();
        PrintRecoveryStats(rs);
        std::fprintf(stderr, "map cost after recovery: %.4f\n",
                     sess->map_cost());
      }
    } else if (cmd == "stats") {
      const SessionStats& st = sess->stats();
      std::fprintf(stderr,
                   "deltas %zu (no-op %zu), components re-searched %zu, "
                   "flips %llu, resident %zu bytes\n",
                   st.deltas_applied, st.no_op_deltas,
                   st.components_researched,
                   static_cast<unsigned long long>(st.flips),
                   sess->EstimateBytes());
    } else if (cmd == "quit" || cmd == "exit") {
      break;
    } else {
      std::fprintf(stderr,
                   "commands: assert A [false] | retract A | apply | cost "
                   "| query P | marginals P | recover | stats | quit\n");
    }
    std::fprintf(stderr, "> ");
  }
  return 0;
}

// ------------------------------------------------------ -serve/-connect

std::atomic<bool> g_shutdown{false};
std::atomic<bool> g_dump_metrics{false};

void HandleShutdownSignal(int) { g_shutdown.store(true); }
void HandleDumpSignal(int) { g_dump_metrics.store(true); }

/// Serves the loaded program + evidence over TCP until SIGINT/SIGTERM,
/// then dumps the metrics report to stderr (the CI smoke greps it).
/// SIGUSR1 dumps the registry text mid-flight; the handlers only set
/// flags, the dump itself runs on this thread (RenderText allocates and
/// locks, so it must stay out of signal context).
int RunServe(const CliArgs& args, const MlnProgram& program,
             const EvidenceDb& evidence) {
  InstallFlightRecorderCrashHandlers();
  if (!args.engine.wal_dir.empty()) {
    FlightRecorder::Global().SetDumpPath(
        (args.engine.wal_dir + "/flight_recorder.txt").c_str());
  }
  ServerOptions opts;
  opts.port = args.serve_port;
  opts.num_workers = args.engine.num_threads > 1 ? args.engine.num_threads : 2;
  opts.session.total_flips = args.engine.total_flips;
  opts.session.seed = args.engine.seed;
  opts.session.track_marginals = args.marginal;
  opts.memory_budget_bytes = args.engine.memory_budget_bytes;
  opts.durability_root = args.engine.wal_dir;
  opts.snapshot_every = args.engine.snapshot_every;
  opts.wal_fsync = args.engine.wal_fsync;
  Server server(program, evidence, opts);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "serve failed: %s\n", started.ToString().c_str());
    return 1;
  }
  // Port on stdout so scripts can capture it even with -serve 0.
  std::printf("serving on %s:%u\n", opts.host.c_str(), server.port());
  std::fflush(stdout);
  std::fprintf(stderr, "program fingerprint %016llx; SIGINT to stop\n",
               (unsigned long long)ProgramFingerprint(program));
  std::signal(SIGINT, HandleShutdownSignal);
  std::signal(SIGTERM, HandleShutdownSignal);
  std::signal(SIGUSR1, HandleDumpSignal);
  while (!g_shutdown.load()) {
    if (g_dump_metrics.exchange(false)) {
      std::fputs(MetricsRegistry::Global().RenderText().c_str(), stderr);
      std::fflush(stderr);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::fputs(server.MetricsReport().c_str(), stderr);
  std::fputs(MetricsRegistry::Global().RenderText().c_str(), stderr);
  server.Stop();
  return 0;
}

std::string FormatAtom(const MlnProgram& program, const GroundAtom& atom) {
  std::string out = program.predicate(atom.pred).name + "(";
  for (size_t i = 0; i < atom.args.size(); ++i) {
    if (i > 0) out += ", ";
    out += program.symbols().SymbolName(atom.args[i]);
  }
  out += ")";
  return out;
}

/// The -session REPL, but the session lives in a remote -serve process
/// and every command travels as one wire request.
int RunConnect(const CliArgs& args, const MlnProgram& program) {
  size_t colon = args.connect.rfind(':');
  if (colon == std::string::npos || colon + 1 == args.connect.size()) {
    std::fprintf(stderr, "-connect expects HOST:PORT, got '%s'\n",
                 args.connect.c_str());
    return 2;
  }
  const std::string host = args.connect.substr(0, colon);
  const uint16_t port = static_cast<uint16_t>(
      std::strtoul(args.connect.c_str() + colon + 1, nullptr, 10));
  Client client;
  Status st = client.Connect(host, port);
  if (!st.ok()) {
    std::fprintf(stderr, "connect failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // A kError reply is a *successful* call at the transport level; a
  // non-OK Result means the connection itself is gone. The REPL keeps
  // going on wire errors (except at open) and dies on transport ones.
  auto call = [&](const char* what,
                  Result<NetResponse> r) -> Result<NetResponse> {
    if (!r.ok()) {
      std::fprintf(stderr, "%s: connection lost: %s\n", what,
                   r.status().ToString().c_str());
      return r;
    }
    if (r.value().type == MsgType::kError) {
      std::fprintf(stderr, "%s: %s%s: %s\n", what,
                   WireErrorName(r.value().error),
                   r.value().retryable ? " (retryable)" : "",
                   r.value().message.c_str());
    }
    return r;
  };

  const std::string session = "cli";
  auto open = call("open", client.OpenSession(
                               session, ProgramFingerprint(program)));
  if (!open.ok() || open.value().type != MsgType::kOpenReply) return 1;
  std::fprintf(stderr,
               "%s session '%s' on %s: %llu atoms, %llu clauses, "
               "%llu components, cost %.2f\n> ",
               open.value().attached ? "re-attached to" : "opened",
               session.c_str(), args.connect.c_str(),
               (unsigned long long)open.value().num_atoms,
               (unsigned long long)open.value().num_clauses,
               (unsigned long long)open.value().num_components,
               open.value().map_cost);

  EvidenceDelta staged;
  std::string line;
  while (std::getline(std::cin, line)) {
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
      line.pop_back();
    }
    size_t sp = line.find(' ');
    std::string cmd = line.substr(0, sp);
    std::string rest = sp == std::string::npos ? "" : line.substr(sp + 1);

    if (cmd.empty()) {
    } else if (cmd == "assert" || cmd == "retract") {
      StageEdit(program, cmd, rest, &staged);
    } else if (cmd == "apply") {
      // Retryable refusals (overload shedding, a not-yet-promoted
      // replica) are retried with backoff instead of bouncing back to
      // the user.
      NetRequest req;
      req.type = MsgType::kApplyDelta;
      req.session = session;
      req.delta = staged;
      auto r = call("apply", client.CallWithRetry(req));
      if (!r.ok()) return 1;
      if (r.value().type == MsgType::kDeltaReply) {
        staged = EvidenceDelta{};
        const NetResponse& d = r.value();
        std::fprintf(stderr,
                     "%s: seq %llu, %llu/%llu components re-searched, "
                     "%llu flips, cost %.2f\n",
                     d.no_op ? "no-op" : "applied",
                     (unsigned long long)d.seq,
                     (unsigned long long)d.components_dirty,
                     (unsigned long long)d.components_total,
                     (unsigned long long)d.flips, d.map_cost);
      }
      // On a retryable wire error the delta stays staged: "apply" again.
    } else if (cmd == "cost") {
      auto r = call("cost", client.QueryMap(session, ""));
      if (!r.ok()) return 1;
      if (r.value().type == MsgType::kMapReply) {
        std::fprintf(stderr, "map cost: %.4f\n", r.value().map_cost);
      }
    } else if (cmd == "query") {
      auto r = call("query", client.QueryMap(session, rest));
      if (!r.ok()) return 1;
      if (r.value().type == MsgType::kMapReply) {
        for (const GroundAtom& atom : r.value().atoms) {
          std::printf("%s\n", FormatAtom(program, atom).c_str());
        }
        std::fflush(stdout);
      }
    } else if (cmd == "marginals") {
      auto r = call("marginals", client.QueryMarginals(session, rest));
      if (!r.ok()) return 1;
      if (r.value().type == MsgType::kMarginalsReply) {
        for (const auto& [atom, p] : r.value().marginals) {
          std::printf("%.4f\t%s\n", p, FormatAtom(program, atom).c_str());
        }
        std::fflush(stdout);
      }
    } else if (cmd == "recover") {
      auto r = call("recover", client.Recover(session));
      if (!r.ok()) return 1;
      if (r.value().type == MsgType::kRecoverReply) {
        PrintRecoveryStats(r.value().recovery);
        std::fprintf(stderr, "map cost after recovery: %.4f\n",
                     r.value().map_cost);
      }
    } else if (cmd == "stats") {
      auto r = call("stats", client.Stats(session));
      if (!r.ok()) return 1;
      if (r.value().type == MsgType::kStatsReply) {
        for (const auto& [key, value] : r.value().stats) {
          std::fprintf(stderr, "%s = %g\n", key.c_str(), value);
        }
      }
    } else if (cmd == "metrics") {
      auto r = call("metrics", client.Metrics());
      if (!r.ok()) return 1;
      if (r.value().type == MsgType::kMetricsReply) {
        std::fputs(r.value().message.c_str(), stdout);
        std::fflush(stdout);
      }
    } else if (cmd == "trace") {
      auto r = call("trace", client.Trace(session));
      if (!r.ok()) return 1;
      if (r.value().type == MsgType::kTraceReply) {
        std::fputs(r.value().message.c_str(), stderr);
      }
    } else if (cmd == "quit" || cmd == "exit") {
      break;
    } else {
      std::fprintf(stderr,
                   "commands: assert A [false] | retract A | apply | cost "
                   "| query P | marginals P | recover | stats | metrics "
                   "| trace | quit\n");
    }
    std::fprintf(stderr, "> ");
  }
  client.Disconnect();
  return 0;
}

// --------------------------------------------------------------- -follow

/// Hot standby: stream the primary's WAL into a local replica, print
/// replication progress, and serve a read-only REPL with an operator
/// `promote` command. With -serve PORT, the replica is also fronted over
/// TCP (queries served, deltas refused with kNotPrimary until promoted).
int RunFollow(const CliArgs& args, const MlnProgram& program,
              const EvidenceDb& evidence) {
  if (args.engine.wal_dir.empty()) {
    std::fprintf(stderr, "-follow needs -wal_dir for the local copy\n");
    return 2;
  }
  size_t colon = args.follow.rfind(':');
  if (colon == std::string::npos || colon + 1 == args.follow.size()) {
    std::fprintf(stderr, "-follow expects HOST:PORT, got '%s'\n",
                 args.follow.c_str());
    return 2;
  }
  InstallFlightRecorderCrashHandlers();
  FlightRecorder::Global().SetDumpPath(
      (args.engine.wal_dir + "/flight_recorder.txt").c_str());

  FollowerOptions fopts;
  fopts.primary_host = args.follow.substr(0, colon);
  fopts.primary_port = static_cast<uint16_t>(
      std::strtoul(args.follow.c_str() + colon + 1, nullptr, 10));
  fopts.session = "cli";
  fopts.session_options.total_flips = args.engine.total_flips;
  fopts.session_options.seed = args.engine.seed;
  fopts.session_options.track_marginals = args.marginal;
  fopts.session_options.num_threads = args.engine.num_threads;
  fopts.session_options.wal_dir = args.engine.wal_dir;
  fopts.session_options.snapshot_every = args.engine.snapshot_every;
  fopts.session_options.wal_fsync = args.engine.wal_fsync;

  FollowerManager follower(program, fopts);
  Status started = follower.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "follow failed: %s\n", started.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "following %s from position %llu\n",
               args.follow.c_str(),
               (unsigned long long)follower.position());

  // Optional TCP front end over the replica.
  std::unique_ptr<Server> front;
  if (args.serve) {
    ServerOptions sopts;
    sopts.port = args.serve_port;
    sopts.replica = follower.replica();
    sopts.replica_session = fopts.session;
    front = std::make_unique<Server>(program, evidence, sopts);
    Status fs = front->Start();
    if (!fs.ok()) {
      std::fprintf(stderr, "replica serve failed: %s\n",
                   fs.ToString().c_str());
      return 1;
    }
    std::printf("serving on %s:%u\n", sopts.host.c_str(), front->port());
    std::fflush(stdout);
  }

  // Progress monitor: one stderr line per replicated position, the
  // "replicated to N" lines scripts (and the CI failover smoke) wait on.
  std::atomic<bool> monitor_stop{false};
  std::thread monitor([&]() {
    uint64_t reported = follower.position();
    while (!monitor_stop.load(std::memory_order_acquire)) {
      const FollowerState st = follower.state();
      const uint64_t pos = follower.position();
      if (pos != reported &&
          (st == FollowerState::kStreaming ||
           st == FollowerState::kBootstrapping)) {
        double cost = 0.0;
        {
          std::lock_guard<std::mutex> lock(follower.replica()->mu());
          InferenceSession* s = follower.replica()->session();
          if (s != nullptr) cost = s->map_cost();
        }
        std::fprintf(stderr, "replicated to %llu (cost %.4f)\n",
                     (unsigned long long)pos, cost);
        std::fflush(stderr);
        reported = pos;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });

  EvidenceDelta staged;
  std::string line;
  int rc = 0;
  ReplicaSession* replica = follower.replica();
  while (std::getline(std::cin, line)) {
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
      line.pop_back();
    }
    size_t sp = line.find(' ');
    std::string cmd = line.substr(0, sp);
    std::string rest = sp == std::string::npos ? "" : line.substr(sp + 1);

    if (cmd.empty()) {
    } else if (cmd == "status") {
      std::fprintf(stderr,
                   "state %s, position %llu, primary committed %llu, "
                   "reconnects %llu%s\n",
                   FollowerStateName(follower.state()),
                   (unsigned long long)follower.position(),
                   (unsigned long long)follower.primary_committed(),
                   (unsigned long long)follower.reconnects(),
                   replica->promoted() ? ", promoted" : "");
    } else if (cmd == "cost") {
      std::lock_guard<std::mutex> lock(replica->mu());
      InferenceSession* s = replica->session();
      if (s == nullptr) {
        std::fprintf(stderr, "no replicated state yet\n");
      } else {
        std::fprintf(stderr, "map cost: %.4f\n", s->map_cost());
      }
    } else if (cmd == "query") {
      std::lock_guard<std::mutex> lock(replica->mu());
      InferenceSession* s = replica->session();
      if (s == nullptr) {
        std::fprintf(stderr, "no replicated state yet\n");
      } else {
        auto atoms = ExtractTrueAtoms(program, s->atoms(), s->truth(), rest);
        if (!atoms.ok()) {
          std::fprintf(stderr, "%s\n", atoms.status().ToString().c_str());
        } else {
          for (const GroundAtom& atom : atoms.value()) {
            AtomId id;
            if (s->atoms().Find(atom, &id)) {
              std::printf("%s\n", s->atoms().AtomName(program, id).c_str());
            }
          }
          std::fflush(stdout);
        }
      }
    } else if (cmd == "marginals") {
      std::lock_guard<std::mutex> lock(replica->mu());
      InferenceSession* s = replica->session();
      if (s == nullptr || s->marginals().empty()) {
        std::fprintf(stderr, "no marginals (follow with -marginal and a "
                             "marginal-tracking primary)\n");
      } else {
        auto pid = program.FindPredicate(rest);
        if (!pid.ok()) {
          std::fprintf(stderr, "unknown predicate %s\n", rest.c_str());
        } else {
          for (AtomId a = 0; a < s->atoms().num_atoms(); ++a) {
            if (s->atoms().atom(a).pred != pid.value()) continue;
            std::printf("%.4f\t%s\n", s->marginals()[a],
                        s->atoms().AtomName(program, a).c_str());
          }
          std::fflush(stdout);
        }
      }
    } else if (cmd == "assert" || cmd == "retract") {
      StageEdit(program, cmd, rest, &staged);
    } else if (cmd == "apply") {
      auto r = replica->ApplyDelta(staged);
      if (!r.ok()) {
        // Pre-promotion this is the not-primary refusal: the staged
        // delta survives, ready to re-apply after `promote`.
        std::fprintf(stderr, "delta refused: %s\n",
                     r.status().ToString().c_str());
      } else {
        staged = EvidenceDelta{};
        std::fprintf(stderr, "applied: cost %.4f at position %llu\n",
                     r.value().map_cost,
                     (unsigned long long)follower.position());
      }
    } else if (cmd == "promote") {
      auto promoted = follower.Promote();
      if (!promoted.ok()) {
        std::fprintf(stderr, "promote failed: %s\n",
                     promoted.status().ToString().c_str());
      } else {
        std::fprintf(stderr, "promoted at %llu\n",
                     (unsigned long long)promoted.value());
        std::fflush(stderr);
      }
    } else if (cmd == "quit" || cmd == "exit") {
      break;
    } else {
      std::fprintf(stderr,
                   "commands: status | cost | query P | marginals P | "
                   "assert A [false] | retract A | apply | promote | "
                   "quit\n");
    }
    std::fprintf(stderr, "> ");
  }
  monitor_stop.store(true, std::memory_order_release);
  monitor.join();
  if (front != nullptr) front->Stop();
  follower.Stop();
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args;
  if (!ParseArgs(argc, argv, &args)) return Usage(argv[0]);

  MlnProgram program;
  EvidenceDb evidence;
  if (!args.gen_dataset.empty()) {
    auto ds = GenerateDataset(args.gen_dataset);
    if (!ds.ok()) {
      std::fprintf(stderr, "%s\n", ds.status().ToString().c_str());
      return 1;
    }
    program = std::move(ds.value().program);
    evidence = std::move(ds.value().evidence);
  } else {
    auto program_result = LoadProgramFile(args.program_file);
    if (!program_result.ok()) {
      std::fprintf(stderr, "%s: %s\n", args.program_file.c_str(),
                   program_result.status().ToString().c_str());
      return 1;
    }
    program = program_result.TakeValue();
    if (!args.evidence_file.empty()) {  // -connect may go without
      Status st = LoadEvidenceFile(args.evidence_file, &program, &evidence);
      if (!st.ok()) {
        std::fprintf(stderr, "%s: %s\n", args.evidence_file.c_str(),
                     st.ToString().c_str());
        return 1;
      }
    }
  }

  if (!args.crash_at.empty()) {
    Status armed = ArmFaultFromSpec(args.crash_at);
    if (!armed.ok()) {
      std::fprintf(stderr, "-crash_at: %s\n", armed.ToString().c_str());
      return 2;
    }
  }

  if (!args.follow.empty()) return RunFollow(args, program, evidence);
  if (args.serve) return RunServe(args, program, evidence);
  if (!args.connect.empty()) return RunConnect(args, program);
  if (args.learn) return RunLearn(args, program, evidence);
  if (args.session) return RunSession(args, program, evidence);

  TuffyEngine engine(program, evidence, args.engine);
  auto result = engine.Run();
  if (!result.ok()) {
    std::fprintf(stderr, "inference failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  const EngineResult& r = result.value();
  if (args.explain) std::fputs(r.explain.c_str(), stderr);
  std::fprintf(stderr,
               "grounding: %zu atoms, %zu clauses, %.3fs; search: %.3fs, "
               "%llu flips, cost %.2f, %zu components\n",
               r.grounding.atoms.num_atoms(),
               r.grounding.clauses.num_clauses(), r.grounding_seconds,
               r.search_seconds, (unsigned long long)r.flips, r.total_cost,
               r.num_components);

  std::string out;
  for (const std::string& pred_name : args.query_preds) {
    auto pid = program.FindPredicate(pred_name);
    if (!pid.ok()) {
      std::fprintf(stderr, "unknown query predicate %s\n",
                   pred_name.c_str());
      return 1;
    }
    for (AtomId a = 0; a < r.grounding.atoms.num_atoms(); ++a) {
      if (r.grounding.atoms.atom(a).pred != pid.value()) continue;
      if (args.marginal) {
        out += StrFormat("%.4f\t", r.marginals[a]);
        out += r.grounding.atoms.AtomName(program, a);
        out += "\n";
      } else if (a < r.truth.size() && r.truth[a] != 0) {
        out += r.grounding.atoms.AtomName(program, a);
        out += "\n";
      }
    }
  }
  return EmitOutput(args, out);
}
