// Figure 5: time-cost plots of Tuffy (component-aware) vs Tuffy-p
// (whole-MRF WalkSAT) vs Alchemy on the multi-component datasets IE, RC.
//
// Shape to reproduce: the component-aware curve drops below the
// whole-MRF curves and the gap persists as runtime grows -- the
// empirical face of Theorem 3.1.
//
// Also reports the exact-fast-path lesion (docs/INFERENCE_EXACT.md):
// the same component-aware run with the tractable solver on vs off,
// plus a fully tractable chain workload where every component is
// answered exactly. `--exact=0` / `--exact=1` restrict the lesion to
// one arm; the default runs both.

#include <cstring>

#include "bench/bench_common.h"
#include "infer/component_walksat.h"
#include "mrf/components.h"

using namespace tuffy;         // NOLINT
using namespace tuffy::bench;  // NOLINT

namespace {

// One engine-level lesion arm: component-aware search with the exact
// fast path on or off. No wall-clock timeout, so the flip budget alone
// determines the result and the two arms are comparable.
void RunEngineLesionArm(const Dataset& ds, bool exact_on) {
  EngineOptions opts;
  opts.search_mode = SearchMode::kComponentAware;
  opts.total_flips = 1000000;
  opts.rounds = 8;
  opts.exact_fast_path = exact_on;
  EngineResult r = MustRun(ds, opts);
  std::printf("# %s exact_%s: cost %.1f, exact components %zu/%zu, "
              "flips %llu, search %.3fs\n",
              ds.name.c_str(), exact_on ? "on " : "off", r.total_cost,
              r.exact_components, r.num_components,
              static_cast<unsigned long long>(r.flips), r.search_seconds);
  BenchJson row("fig5_exact_lesion");
  row.Str("dataset", ds.name)
      .Str("system", exact_on ? "exact_on" : "exact_off")
      .Num("cost", r.total_cost)
      .Int("exact_components", r.exact_components)
      .Int("components", r.num_components)
      .Int("flips", r.flips)
      .Num("search_seconds", r.search_seconds)
      .Emit();
}

// The per-component latency story needs a workload where every
// component is tractable: random forest-structured components from the
// exact-oracle generator. Same flip budget both arms; the exact arm
// answers each component in one linear-time pass instead.
void RunTractableLesionArm(bool exact_on) {
  TractableMrfParams params;
  params.num_components = 2048;
  params.max_atoms = 8;
  params.seed = 20260808;
  size_t num_atoms = 0;
  std::vector<GroundClause> clauses = MakeTractableMrf(params, &num_atoms);
  ComponentSet comps = DetectComponents(num_atoms, clauses);

  ComponentSearchOptions copts;
  copts.total_flips = 20000 * comps.num_components();
  copts.use_exact = exact_on;
  ComponentSearchResult r =
      RunComponentWalkSat(num_atoms, clauses, comps, copts, /*seed=*/1);
  double per_component_us = r.seconds * 1e6 / comps.num_components();
  std::printf("# tractable-chains exact_%s: cost %.3f, exact %zu/%zu, "
              "flips %llu, %.2f us/component\n",
              exact_on ? "on " : "off", r.cost, r.exact_components,
              comps.num_components(),
              static_cast<unsigned long long>(r.flips), per_component_us);
  BenchJson row("fig5_exact_lesion");
  row.Str("dataset", "tractable-chains")
      .Str("system", exact_on ? "exact_on" : "exact_off")
      .Num("cost", r.cost, 3)
      .Int("exact_components", r.exact_components)
      .Int("components", comps.num_components())
      .Int("flips", r.flips)
      .Num("search_seconds", r.seconds)
      .Num("per_component_us", per_component_us, 2)
      .Emit();
}

}  // namespace

int main(int argc, char** argv) {
  int exact_arm = -1;  // -1 = run both lesion arms
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--exact=0") == 0) exact_arm = 0;
    if (std::strcmp(argv[i], "--exact=1") == 0) exact_arm = 1;
  }
  PrintHeader("Figure 5: Tuffy vs Tuffy-p vs Alchemy (IE, RC)");
  Dataset ie = BenchIe();
  Dataset rc = BenchRc();
  const uint64_t kFlips = 4000000;
  for (const Dataset* dsp : {&ie, &rc}) {
    const Dataset& ds = *dsp;
    std::printf("\n# dataset %s\n", ds.name.c_str());

    EngineOptions alchemy;
    alchemy.grounding_mode = GroundingMode::kTopDown;
    alchemy.search_mode = SearchMode::kInMemory;
    alchemy.total_flips = kFlips;
    alchemy.timeout_seconds = 20.0;
    EngineResult ra = MustRun(ds, alchemy);
    PrintTrace(ds.name + "/Alchemy", ra.trace, ra.grounding_seconds,
               ra.grounding.fixed_cost);

    EngineOptions tp;
    tp.search_mode = SearchMode::kInMemory;
    tp.total_flips = kFlips;
    tp.timeout_seconds = 20.0;
    EngineResult rp = MustRun(ds, tp);
    PrintTrace(ds.name + "/Tuffy-p", rp.trace, rp.grounding_seconds,
               rp.grounding.fixed_cost);

    EngineOptions tuffy;
    tuffy.search_mode = SearchMode::kComponentAware;
    tuffy.total_flips = kFlips;
    tuffy.rounds = 16;
    tuffy.timeout_seconds = 20.0;
    EngineResult rt = MustRun(ds, tuffy);
    PrintTrace(ds.name + "/Tuffy", rt.trace, rt.grounding_seconds,
               rt.grounding.fixed_cost);

    std::printf("# %s summary: Alchemy %.1f | Tuffy-p %.1f | Tuffy %.1f\n",
                ds.name.c_str(), ra.total_cost, rp.total_cost,
                rt.total_cost);
  }

  PrintHeader("Exact-fast-path lesion (docs/INFERENCE_EXACT.md)");
  for (const Dataset* dsp : {&ie, &rc}) {
    if (exact_arm != 0) RunEngineLesionArm(*dsp, true);
    if (exact_arm != 1) RunEngineLesionArm(*dsp, false);
  }
  if (exact_arm != 0) RunTractableLesionArm(true);
  if (exact_arm != 1) RunTractableLesionArm(false);
  return 0;
}
