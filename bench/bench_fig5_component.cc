// Figure 5: time-cost plots of Tuffy (component-aware) vs Tuffy-p
// (whole-MRF WalkSAT) vs Alchemy on the multi-component datasets IE, RC.
//
// Shape to reproduce: the component-aware curve drops below the
// whole-MRF curves and the gap persists as runtime grows -- the
// empirical face of Theorem 3.1.

#include "bench/bench_common.h"

using namespace tuffy;         // NOLINT
using namespace tuffy::bench;  // NOLINT

int main() {
  PrintHeader("Figure 5: Tuffy vs Tuffy-p vs Alchemy (IE, RC)");
  Dataset ie = BenchIe();
  Dataset rc = BenchRc();
  const uint64_t kFlips = 4000000;
  for (const Dataset* dsp : {&ie, &rc}) {
    const Dataset& ds = *dsp;
    std::printf("\n# dataset %s\n", ds.name.c_str());

    EngineOptions alchemy;
    alchemy.grounding_mode = GroundingMode::kTopDown;
    alchemy.search_mode = SearchMode::kInMemory;
    alchemy.total_flips = kFlips;
    alchemy.timeout_seconds = 20.0;
    EngineResult ra = MustRun(ds, alchemy);
    PrintTrace(ds.name + "/Alchemy", ra.trace, ra.grounding_seconds,
               ra.grounding.fixed_cost);

    EngineOptions tp;
    tp.search_mode = SearchMode::kInMemory;
    tp.total_flips = kFlips;
    tp.timeout_seconds = 20.0;
    EngineResult rp = MustRun(ds, tp);
    PrintTrace(ds.name + "/Tuffy-p", rp.trace, rp.grounding_seconds,
               rp.grounding.fixed_cost);

    EngineOptions tuffy;
    tuffy.search_mode = SearchMode::kComponentAware;
    tuffy.total_flips = kFlips;
    tuffy.rounds = 16;
    tuffy.timeout_seconds = 20.0;
    EngineResult rt = MustRun(ds, tuffy);
    PrintTrace(ds.name + "/Tuffy", rt.trace, rt.grounding_seconds,
               rt.grounding.fixed_cost);

    std::printf("# %s summary: Alchemy %.1f | Tuffy-p %.1f | Tuffy %.1f\n",
                ds.name.c_str(), ra.total_cost, rp.total_cost,
                rt.total_cost);
  }
  return 0;
}
