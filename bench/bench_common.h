#ifndef TUFFY_BENCH_BENCH_COMMON_H_
#define TUFFY_BENCH_BENCH_COMMON_H_

// Shared workload scales and helpers for the experiment harness. Every
// bench binary regenerates one table or figure of the paper (see
// DESIGN.md for the experiment index). Scales are chosen so the full
// suite completes in minutes on a laptop while preserving the paper's
// qualitative shapes (who wins, by roughly what factor, where crossovers
// fall); absolute numbers are not expected to match the 2011 testbed.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "datagen/datasets.h"
#include "exec/tuffy_engine.h"
#include "util/mem_tracker.h"
#include "infer/walksat.h"

namespace tuffy {
namespace bench {

inline Dataset BenchLp() {
  LpParams p;
  p.num_professors = 25;
  p.num_students = 150;
  p.num_courses = 60;
  p.num_publications = 700;
  auto r = MakeLpDataset(p);
  if (!r.ok()) {
    std::fprintf(stderr, "LP generation failed: %s\n",
                 r.status().ToString().c_str());
    std::exit(1);
  }
  return r.TakeValue();
}

inline Dataset BenchIe() {
  IeParams p;
  p.num_citations = 900;
  p.positions_per_citation = 5;
  p.num_fields = 4;
  p.vocabulary = 120;
  p.num_token_rules = 250;
  auto r = MakeIeDataset(p);
  if (!r.ok()) {
    std::fprintf(stderr, "IE generation failed: %s\n",
                 r.status().ToString().c_str());
    std::exit(1);
  }
  return r.TakeValue();
}

inline Dataset BenchRc() {
  RcParams p;
  p.num_clusters = 120;
  p.papers_per_cluster = 10;
  p.num_categories = 8;
  auto r = MakeRcDataset(p);
  if (!r.ok()) {
    std::fprintf(stderr, "RC generation failed: %s\n",
                 r.status().ToString().c_str());
    std::exit(1);
  }
  return r.TakeValue();
}

inline Dataset BenchEr() {
  ErParams p;
  p.num_records = 48;
  p.num_entities = 12;
  p.noise = 0.02;
  auto r = MakeErDataset(p);
  if (!r.ok()) {
    std::fprintf(stderr, "ER generation failed: %s\n",
                 r.status().ToString().c_str());
    std::exit(1);
  }
  return r.TakeValue();
}

/// Larger variants used by the grounding experiments (Tables 2 and 6),
/// where the relational join work must dominate the shared clause-
/// resolution cost for the top-down/bottom-up asymmetry to be visible.
inline Dataset GroundingScaleLp() {
  LpParams p;
  p.num_professors = 10;
  p.num_students = 40;
  p.num_courses = 100;
  p.num_publications = 12000;  // the publication self-join dominates
  auto r = MakeLpDataset(p);
  if (!r.ok()) std::exit(1);
  return r.TakeValue();
}

inline Dataset GroundingScaleRc() {
  RcParams p;
  p.num_clusters = 600;
  p.papers_per_cluster = 15;
  p.num_categories = 4;
  p.authors_per_cluster = 8;
  auto r = MakeRcDataset(p);
  if (!r.ok()) std::exit(1);
  return r.TakeValue();
}

/// The largest grounding workload in the harness: LP with the
/// publication relation scaled until the self-join dominates everything
/// else (the person universe stays fixed, so the candidate/clause side
/// is constant while the relational work grows). This is the dataset the
/// vectorized-executor speedup gate runs on — top-down grounding is far
/// too slow here, so only the bottom-up lesion uses it.
inline Dataset GroundingVecScaleLp() {
  LpParams p;
  p.num_professors = 10;
  p.num_students = 40;
  p.num_courses = 100;
  p.num_publications = 128000;
  auto r = MakeLpDataset(p);
  if (!r.ok()) std::exit(1);
  return r.TakeValue();
}

/// All four evaluation datasets, in the paper's order.
inline std::vector<Dataset> AllBenchDatasets() {
  std::vector<Dataset> out;
  out.push_back(BenchLp());
  out.push_back(BenchIe());
  out.push_back(BenchRc());
  out.push_back(BenchEr());
  return out;
}

inline EngineResult MustRun(const Dataset& ds, const EngineOptions& opts) {
  TuffyEngine engine(ds.program, ds.evidence, opts);
  auto r = engine.Run();
  if (!r.ok()) {
    std::fprintf(stderr, "%s: engine failed: %s\n", ds.name.c_str(),
                 r.status().ToString().c_str());
    std::exit(1);
  }
  return r.TakeValue();
}

/// Prints a time-cost series in a gnuplot-friendly form:
///   <series> <seconds> <cost>
/// `offset` shifts the trace (e.g. by grounding time, matching the
/// paper's curves that begin when grounding completes).
inline void PrintTrace(const std::string& series,
                       const std::vector<TracePoint>& trace, double offset,
                       double fixed_cost) {
  for (const TracePoint& tp : trace) {
    std::printf("%-24s %10.3f %14.1f\n", series.c_str(),
                tp.seconds + offset, tp.cost + fixed_cost);
  }
}

/// Emits one machine-readable result line so the perf trajectory can be
/// tracked across PRs (grep for ^BENCH_JSON and parse the rest as JSON).
/// The common shape shared by the search benches; rows with extra fields
/// build a BenchJson (bench/bench_json.h) directly.
inline void PrintJsonLine(const char* bench, const std::string& dataset,
                          const char* system, double flips_per_sec,
                          double seconds, uint64_t flips, double cost) {
  BenchJson row(bench);
  row.Str("dataset", dataset)
      .Str("system", system)
      .Num("flips_per_sec", flips_per_sec, 1)
      .Num("seconds", seconds)
      .Int("flips", flips)
      .Num("cost", cost)
      .Emit();
}

inline void PrintHeader(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n");
}

}  // namespace bench
}  // namespace tuffy

#endif  // TUFFY_BENCH_BENCH_COMMON_H_
