#ifndef TUFFY_BENCH_BENCH_JSON_H_
#define TUFFY_BENCH_BENCH_JSON_H_

// Shared BENCH_JSON emitter. Every bench binary prints one
// machine-readable line per measured configuration:
//   BENCH_JSON {"bench":"serving","system":"session",...}
// so the perf trajectory can be tracked across PRs (grep for
// ^BENCH_JSON and parse the rest as JSON). This builder replaces the
// hand-rolled printf format strings — a missing quote or comma in one
// of those silently corrupts the whole line for downstream parsers.
//
// Rows can also stamp a metrics-registry delta: capture a baseline with
// MetricsBaseline() before the measured region, then .Metrics(base)
// appends {"metrics":{...}} holding every registry counter/histogram
// sample that moved since — WAL appends, grounding rows, search flips —
// tying each BENCH_JSON row to what the system actually did, not just
// how long it took.

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace tuffy {
namespace bench {

/// Captures the registry's current samples, to diff against later.
inline std::vector<MetricSample> MetricsBaseline() {
  return MetricsRegistry::Global().Snapshot();
}

/// One BENCH_JSON line under construction. Keys are emitted in call
/// order; call Emit() exactly once.
class BenchJson {
 public:
  explicit BenchJson(const char* bench) {
    out_ = "{";
    Str("bench", bench);
  }

  BenchJson& Str(const char* key, const std::string& value) {
    Key(key);
    out_ += '"';
    for (char c : value) {
      if (c == '"' || c == '\\') out_ += '\\';
      out_ += c;
    }
    out_ += '"';
    return *this;
  }

  BenchJson& Num(const char* key, double value, int precision = 4) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    Key(key);
    out_ += buf;
    return *this;
  }

  BenchJson& Int(const char* key, uint64_t value) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
    Key(key);
    out_ += buf;
    return *this;
  }

  BenchJson& Bool(const char* key, bool value) {
    Key(key);
    out_ += value ? "true" : "false";
    return *this;
  }

  /// Appends "metrics":{name:delta,...} — every registry sample whose
  /// value moved since `base` (new names count from zero). Benches run
  /// with metrics enabled by default, so this is the per-row account of
  /// wal/ground/search activity.
  BenchJson& Metrics(const std::vector<MetricSample>& base) {
    Key("metrics");
    out_ += '{';
    bool first = true;
    for (const MetricSample& s : MetricsRegistry::Global().Snapshot()) {
      double before = 0.0;
      for (const MetricSample& b : base) {
        if (b.name == s.name) {
          before = b.value;
          break;
        }
      }
      const double delta = s.value - before;
      if (delta == 0.0) continue;
      if (!first) out_ += ',';
      first = false;
      out_ += '"';
      out_ += s.name;
      out_ += "\":";
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.6g", delta);
      out_ += buf;
    }
    out_ += '}';
    return *this;
  }

  /// Prints the finished line to stdout.
  void Emit() {
    out_ += '}';
    std::printf("BENCH_JSON %s\n", out_.c_str());
    std::fflush(stdout);
  }

 private:
  void Key(const char* key) {
    if (out_.size() > 1) out_ += ',';
    out_ += '"';
    out_ += key;
    out_ += "\":";
  }

  std::string out_;
};

}  // namespace bench
}  // namespace tuffy

#endif  // TUFFY_BENCH_BENCH_JSON_H_
