// Table 2: grounding time (seconds), Alchemy (top-down, Prolog-style
// nested loops over unindexed evidence lists) vs Tuffy (bottom-up
// compilation to relational queries with a cost-based optimizer).
//
// Paper values:          LP    IE     RC      ER
//   Alchemy (top-down)   48    13     3,913   23,891
//   Tuffy  (bottom-up)   6     13     40      106
//
// The shape to reproduce: bottom-up never loses, and wins by orders of
// magnitude on join-heavy datasets (RC, ER, LP); IE is grounding-light so
// the two are comparable.
//
// A second section runs the executor lesion within bottom-up grounding:
// the tuple-at-a-time Volcano interpreter versus the columnar batch
// executor (and multi-threaded per-rule grounding), with the ground
// clause stores verified bit-identical across every configuration. Each
// configuration emits a BENCH_JSON line (rows = candidate bindings
// enumerated per second of total grounding wall time) so the grounding
// throughput trajectory is tracked across PRs like the flip rate is.

#include <cstring>

#include "bench/bench_common.h"
#include "ground/bottom_up_grounder.h"
#include "ground/top_down_grounder.h"
#include "util/timer.h"

using namespace tuffy;         // NOLINT
using namespace tuffy::bench;  // NOLINT

namespace {

/// Bit-identical comparison of two grounding results: same atoms in the
/// same order, same clauses in the same order, same weights/hardness.
bool SameGrounding(const GroundingResult& a, const GroundingResult& b) {
  if (a.atoms.num_atoms() != b.atoms.num_atoms()) return false;
  for (AtomId i = 0; i < a.atoms.num_atoms(); ++i) {
    if (!(a.atoms.atom(i) == b.atoms.atom(i))) return false;
  }
  if (a.clauses.num_clauses() != b.clauses.num_clauses()) return false;
  for (size_t i = 0; i < a.clauses.num_clauses(); ++i) {
    const GroundClause& ca = a.clauses.clauses()[i];
    const GroundClause& cb = b.clauses.clauses()[i];
    if (ca.lits != cb.lits || ca.weight != cb.weight || ca.hard != cb.hard) {
      return false;
    }
  }
  return a.fixed_cost == b.fixed_cost &&
         a.hard_contradiction == b.hard_contradiction;
}

struct LesionRun {
  GroundingResult result;
  double seconds = 0.0;
};

LesionRun RunLesion(const Dataset& ds, bool vectorized, int threads,
                    bool antijoin = true) {
  GroundingOptions gopts;
  gopts.num_threads = threads;
  OptimizerOptions oopts;
  oopts.enable_vectorized = vectorized;
  oopts.enable_antijoin_pruning = antijoin;
  Timer t;
  BottomUpGrounder grounder(ds.program, ds.evidence, gopts, oopts);
  auto r = grounder.Ground();
  LesionRun run;
  run.seconds = t.ElapsedSeconds();
  if (!r.ok()) {
    std::fprintf(stderr, "%s: grounding failed: %s\n", ds.name.c_str(),
                 r.status().ToString().c_str());
    std::exit(1);
  }
  run.result = r.TakeValue();
  return run;
}

void PrintGroundingJson(const char* dataset, const char* system,
                        const LesionRun& run, double speedup) {
  std::printf(
      "BENCH_JSON {\"bench\":\"table2_grounding\",\"dataset\":\"%s\","
      "\"system\":\"%s\",\"seconds\":%.4f,\"rows\":%llu,"
      "\"rows_per_sec\":%.1f,\"speedup_vs_volcano\":%.2f,"
      "\"pruned_by_antijoin\":%llu,\"ground_clauses\":%zu}\n",
      dataset, system, run.seconds,
      static_cast<unsigned long long>(run.result.stats.candidates),
      static_cast<double>(run.result.stats.candidates) / run.seconds,
      speedup,
      static_cast<unsigned long long>(run.result.stats.pruned_by_antijoin),
      run.result.clauses.num_clauses());
}

}  // namespace

int main(int argc, char** argv) {
  const bool skip_topdown = argc > 1 && std::strcmp(argv[1], "-lesion") == 0;

  if (!skip_topdown) {
    PrintHeader("Table 2: grounding time (seconds)");
    std::printf("%-10s %14s %14s %9s %14s\n", "dataset", "topdown(s)",
                "bottomup(s)", "speedup", "ground_clauses");
    std::vector<Dataset> datasets;
    datasets.push_back(GroundingScaleLp());
    datasets.push_back(BenchIe());
    datasets.push_back(GroundingScaleRc());
    datasets.push_back(BenchEr());
    for (const Dataset& ds : datasets) {
      Timer t1;
      TopDownGrounder td(ds.program, ds.evidence);
      auto rt = td.Ground();
      double td_seconds = t1.ElapsedSeconds();
      if (!rt.ok()) {
        std::fprintf(stderr, "%s\n", rt.status().ToString().c_str());
        return 1;
      }
      Timer t2;
      BottomUpGrounder bu(ds.program, ds.evidence);
      auto rb = bu.Ground();
      double bu_seconds = t2.ElapsedSeconds();
      if (!rb.ok()) {
        std::fprintf(stderr, "%s\n", rb.status().ToString().c_str());
        return 1;
      }
      if (rb.value().clauses.num_clauses() !=
          rt.value().clauses.num_clauses()) {
        std::fprintf(stderr, "%s: grounder mismatch (%zu vs %zu clauses)\n",
                     ds.name.c_str(), rb.value().clauses.num_clauses(),
                     rt.value().clauses.num_clauses());
        return 1;
      }
      std::printf("%-10s %14.3f %14.3f %8.1fx %14zu\n", ds.name.c_str(),
                  td_seconds, bu_seconds, td_seconds / bu_seconds,
                  rb.value().clauses.num_clauses());
    }
  }

  // ---- Executor lesion: Volcano vs columnar batch execution. ----
  PrintHeader(
      "Grounding executor lesion: Volcano vs vectorized (bit-identical)");
  std::printf("%-10s %12s %12s %12s %9s %14s\n", "dataset", "volcano(s)",
              "vec(s)", "vec-4t(s)", "speedup", "rows/s(vec)");
  std::vector<Dataset> lesion_datasets;
  lesion_datasets.push_back(GroundingScaleLp());
  lesion_datasets.push_back(GroundingScaleRc());
  lesion_datasets.push_back(GroundingVecScaleLp());
  lesion_datasets.back().name = "LP-XL";
  for (const Dataset& ds : lesion_datasets) {
    LesionRun volcano = RunLesion(ds, /*vectorized=*/false, /*threads=*/1);
    LesionRun vec = RunLesion(ds, /*vectorized=*/true, /*threads=*/1);
    LesionRun vec_mt = RunLesion(ds, /*vectorized=*/true, /*threads=*/4);
    if (!SameGrounding(volcano.result, vec.result)) {
      std::fprintf(stderr, "%s: vectorized grounding differs from Volcano\n",
                   ds.name.c_str());
      return 1;
    }
    if (!SameGrounding(vec.result, vec_mt.result)) {
      std::fprintf(stderr, "%s: 4-thread grounding differs from 1-thread\n",
                   ds.name.c_str());
      return 1;
    }
    const double speedup = volcano.seconds / vec.seconds;
    std::printf("%-10s %12.3f %12.3f %12.3f %8.2fx %14.0f\n",
                ds.name.c_str(), volcano.seconds, vec.seconds, vec_mt.seconds,
                speedup,
                static_cast<double>(vec.result.stats.candidates) /
                    vec.seconds);
    PrintGroundingJson(ds.name.c_str(), "volcano", volcano, 1.0);
    PrintGroundingJson(ds.name.c_str(), "vectorized", vec, speedup);
    PrintGroundingJson(ds.name.c_str(), "vectorized_mt", vec_mt,
                       volcano.seconds / vec_mt.seconds);
  }

  // ---- Anti-join lesion: evidence-satisfaction pruning on vs off. The
  // default runs above prune; this re-runs with the anti-joins lesioned
  // out and verifies the ground store is bit-identical while the pruned
  // configuration resolves fewer rows (those rows never left the
  // executor).
  PrintHeader("Anti-join lesion: in-plan evidence pruning vs resolution");
  std::printf("%-10s %12s %12s %14s %14s\n", "dataset", "pruned(s)",
              "unpruned(s)", "rows_resolved", "rows_pruned");
  std::vector<Dataset> aj_datasets;
  aj_datasets.push_back(GroundingScaleLp());
  aj_datasets.push_back(GroundingScaleRc());
  for (const Dataset& ds : aj_datasets) {
    LesionRun pruned =
        RunLesion(ds, /*vectorized=*/true, /*threads=*/1, /*antijoin=*/true);
    LesionRun unpruned =
        RunLesion(ds, /*vectorized=*/true, /*threads=*/1, /*antijoin=*/false);
    if (!SameGrounding(pruned.result, unpruned.result)) {
      std::fprintf(stderr,
                   "%s: anti-join pruning changed the ground store\n",
                   ds.name.c_str());
      return 1;
    }
    if (pruned.result.stats.candidates +
            pruned.result.stats.pruned_by_antijoin !=
        unpruned.result.stats.candidates) {
      std::fprintf(stderr, "%s: pruned+resolved != unpruned resolved\n",
                   ds.name.c_str());
      return 1;
    }
    std::printf("%-10s %12.3f %12.3f %14llu %14llu\n", ds.name.c_str(),
                pruned.seconds, unpruned.seconds,
                static_cast<unsigned long long>(pruned.result.stats.candidates),
                static_cast<unsigned long long>(
                    pruned.result.stats.pruned_by_antijoin));
    PrintGroundingJson(ds.name.c_str(), "antijoin_pruned", pruned,
                       unpruned.seconds / pruned.seconds);
    PrintGroundingJson(ds.name.c_str(), "antijoin_lesion", unpruned, 1.0);
  }
  return 0;
}
