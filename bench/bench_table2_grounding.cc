// Table 2: grounding time (seconds), Alchemy (top-down, Prolog-style
// nested loops over unindexed evidence lists) vs Tuffy (bottom-up
// compilation to relational queries with a cost-based optimizer).
//
// Paper values:          LP    IE     RC      ER
//   Alchemy (top-down)   48    13     3,913   23,891
//   Tuffy  (bottom-up)   6     13     40      106
//
// The shape to reproduce: bottom-up never loses, and wins by orders of
// magnitude on join-heavy datasets (RC, ER, LP); IE is grounding-light so
// the two are comparable.

#include "bench/bench_common.h"
#include "ground/bottom_up_grounder.h"
#include "ground/top_down_grounder.h"
#include "util/timer.h"

using namespace tuffy;         // NOLINT
using namespace tuffy::bench;  // NOLINT

int main() {
  PrintHeader("Table 2: grounding time (seconds)");
  std::printf("%-10s %14s %14s %9s %14s\n", "dataset", "topdown(s)",
              "bottomup(s)", "speedup", "ground_clauses");
  std::vector<Dataset> datasets;
  datasets.push_back(GroundingScaleLp());
  datasets.push_back(BenchIe());
  datasets.push_back(GroundingScaleRc());
  datasets.push_back(BenchEr());
  for (const Dataset& ds : datasets) {
    Timer t1;
    TopDownGrounder td(ds.program, ds.evidence);
    auto rt = td.Ground();
    double td_seconds = t1.ElapsedSeconds();
    if (!rt.ok()) {
      std::fprintf(stderr, "%s\n", rt.status().ToString().c_str());
      return 1;
    }
    Timer t2;
    BottomUpGrounder bu(ds.program, ds.evidence);
    auto rb = bu.Ground();
    double bu_seconds = t2.ElapsedSeconds();
    if (!rb.ok()) {
      std::fprintf(stderr, "%s\n", rb.status().ToString().c_str());
      return 1;
    }
    if (rb.value().clauses.num_clauses() != rt.value().clauses.num_clauses()) {
      std::fprintf(stderr, "%s: grounder mismatch (%zu vs %zu clauses)\n",
                   ds.name.c_str(), rb.value().clauses.num_clauses(),
                   rt.value().clauses.num_clauses());
      return 1;
    }
    std::printf("%-10s %14.3f %14.3f %8.1fx %14zu\n", ds.name.c_str(),
                td_seconds, bu_seconds, td_seconds / bu_seconds,
                rb.value().clauses.num_clauses());
  }
  return 0;
}
