// Weight-learning throughput: epochs/s and count-statistics rates for
// both learners on the RC workload, plus the flip-rate overhead of the
// WalkSatState formula-statistics hook (which must stay O(1) per flip).

#include "bench/bench_common.h"
#include "ground/bottom_up_grounder.h"
#include "ground/rule_count_index.h"
#include "learn/learner.h"
#include "util/timer.h"

namespace tuffy {
namespace bench {
namespace {

Dataset LearnScaleRc() {
  RcParams p;
  p.num_clusters = 30;
  p.papers_per_cluster = 10;
  p.num_categories = 5;
  p.labeled_fraction = 0.6;
  auto r = MakeRcDataset(p);
  if (!r.ok()) {
    std::fprintf(stderr, "RC generation failed: %s\n",
                 r.status().ToString().c_str());
    std::exit(1);
  }
  return r.TakeValue();
}

void PrintLearnJson(const char* system, const LearnResult& lr,
                    double counts_per_sec) {
  BenchJson row("learning");
  row.Str("dataset", "RC")
      .Str("system", system)
      .Int("epochs", static_cast<uint64_t>(lr.epochs))
      .Num("seconds", lr.seconds)
      .Num("epochs_per_sec", lr.seconds > 0 ? lr.epochs / lr.seconds : 0.0,
           2)
      .Num("counts_per_sec", counts_per_sec, 1)
      .Int("ground_clauses", lr.num_ground_clauses)
      .Emit();
}

void RunLearner(const Dataset& ds, LearnAlgorithm algo, const char* system) {
  LearnOptions lopts;
  lopts.algorithm = algo;
  lopts.query_predicates = {"cat"};
  lopts.max_epochs = 20;
  lopts.convergence_tol = 0.0;  // fixed-epoch throughput measurement
  lopts.map_flips = 100000;
  lopts.mcsat_samples = 60;
  lopts.mcsat_burn_in = 6;
  EngineOptions eopts;
  TuffyEngine engine(ds.program, ds.evidence, eopts);
  auto result = engine.Learn(lopts);
  if (!result.ok()) {
    std::fprintf(stderr, "learning failed: %s\n",
                 result.status().ToString().c_str());
    std::exit(1);
  }
  const LearnResult& lr = result.value();
  // Clause-truth evaluations feeding the count statistics: one sweep
  // per MAP epoch (perceptron), one per MC-SAT round (Newton).
  const double sweeps =
      algo == LearnAlgorithm::kVotedPerceptron
          ? static_cast<double>(lr.epochs)
          : static_cast<double>(lr.epochs) *
                (lopts.mcsat_samples + lopts.mcsat_burn_in);
  const double counts_per_sec =
      lr.seconds > 0
          ? sweeps * static_cast<double>(lr.num_ground_clauses) / lr.seconds
          : 0.0;
  PrintLearnJson(system, lr, counts_per_sec);
}

/// Flip-rate with and without the formula-statistics hook enabled: the
/// hook must not perturb the WalkSAT hot path measurably.
void HookOverhead(const Dataset& ds) {
  EngineOptions eopts;
  TuffyEngine engine(ds.program, ds.evidence, eopts);
  LearnOptions lopts;
  lopts.query_predicates = {"cat"};
  // Reuse Learn's grounding path by grounding through the engine once:
  // simplest is to re-ground here with the split evidence.
  auto split = SplitEvidenceForLearning(ds.program, ds.evidence, {"cat"});
  if (!split.ok()) std::exit(1);
  GroundingOptions gopts;
  gopts.lazy_closure = false;
  gopts.keep_zero_weight_clauses = true;
  BottomUpGrounder grounder(ds.program, split.value().evidence, gopts,
                            OptimizerOptions{});
  auto grounding = grounder.Ground();
  if (!grounding.ok()) std::exit(1);
  const GroundingResult& g = grounding.value();
  Problem problem =
      MakeWholeProblem(g.atoms.num_atoms(), g.clauses.clauses());
  RuleCountIndex index = BuildRuleCountIndex(
      g.clauses, static_cast<int32_t>(ds.program.clauses().size()));

  constexpr uint64_t kFlips = 2000000;
  for (int with_stats = 0; with_stats <= 1; ++with_stats) {
    Rng rng(77);
    WalkSatState state(&problem, /*hard_weight=*/1e6);
    if (with_stats) state.EnableFormulaStats(&index);
    state.RandomAssignment(&rng);
    Timer timer;
    uint64_t done = 0;
    for (uint64_t f = 0; f < kFlips; ++f) {
      // Random restart on satisfaction so the whole budget measures the
      // steady-state flip rate.
      if (!state.HasViolated()) state.RandomAssignment(&rng);
      state.Flip(ChooseWalkSatMove(state, 0.5, &rng));
      ++done;
    }
    double secs = timer.ElapsedSeconds();
    PrintJsonLine("learning_hook_overhead", "RC",
                  with_stats ? "walksat_stats_on" : "walksat_stats_off",
                  secs > 0 ? done / secs : 0.0, secs, done, state.cost());
  }
}

}  // namespace
}  // namespace bench
}  // namespace tuffy

int main() {
  using namespace tuffy;
  using namespace tuffy::bench;
  PrintHeader("Weight learning throughput (RC)");
  Dataset ds = LearnScaleRc();
  RunLearner(ds, LearnAlgorithm::kVotedPerceptron, "voted_perceptron");
  RunLearner(ds, LearnAlgorithm::kDiagonalNewton, "diagonal_newton");
  HookOverhead(ds);
  return 0;
}
