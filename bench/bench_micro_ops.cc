// Microbenchmarks (google-benchmark) for the performance-critical
// primitives underneath the experiments: join operators, WalkSAT flips,
// buffer-pool access, union-find, and grounding of the RC program.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "datagen/datasets.h"
#include "util/timer.h"
#include "ground/bottom_up_grounder.h"
#include "infer/walksat.h"
#include "mrf/components.h"
#include "ra/operators.h"
#include "storage/buffer_pool.h"
#include "storage/heap_file.h"
#include "util/rng.h"
#include "util/union_find.h"

namespace tuffy {
namespace {

Table MakeIntTable(const std::string& name, int rows, int key_mod,
                   uint64_t seed) {
  Table t(name,
          Schema({{"k", ColumnType::kInt64}, {"v", ColumnType::kInt64}}));
  Rng rng(seed);
  for (int i = 0; i < rows; ++i) {
    t.Append({Datum(static_cast<int64_t>(rng.Uniform(key_mod))),
              Datum(static_cast<int64_t>(i))});
  }
  t.Analyze();
  return t;
}

template <typename JoinOp>
void RunJoin(benchmark::State& state) {
  int rows = static_cast<int>(state.range(0));
  Table l = MakeIntTable("l", rows, rows / 4 + 1, 1);
  Table r = MakeIntTable("r", rows, rows / 4 + 1, 2);
  for (auto _ : state) {
    auto join = std::make_unique<JoinOp>(std::make_unique<SeqScanOp>(&l),
                                         std::make_unique<SeqScanOp>(&r),
                                         std::vector<JoinKey>{{0, 0}});
    auto out = ExecuteToTable(join.get(), "out");
    benchmark::DoNotOptimize(out.value().num_rows());
  }
  state.SetItemsProcessed(state.iterations() * rows);
}

void BM_HashJoin(benchmark::State& state) { RunJoin<HashJoinOp>(state); }
void BM_SortMergeJoin(benchmark::State& state) {
  RunJoin<SortMergeJoinOp>(state);
}
void BM_NestedLoopJoin(benchmark::State& state) {
  RunJoin<NestedLoopJoinOp>(state);
}
BENCHMARK(BM_HashJoin)->Arg(1000)->Arg(4000);
BENCHMARK(BM_SortMergeJoin)->Arg(1000)->Arg(4000);
BENCHMARK(BM_NestedLoopJoin)->Arg(1000)->Arg(4000);

void BM_WalkSatFlips(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  std::vector<GroundClause> clauses = MakeExample1Mrf(n);
  Problem p = MakeWholeProblem(2 * n, clauses);
  WalkSatOptions opts;
  Rng rng(3);
  IncrementalWalkSat search(&p, opts, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(search.RunFlips(1000));
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_WalkSatFlips)->Arg(100)->Arg(10000);

void BM_BufferPoolHit(benchmark::State& state) {
  DiskManager disk;
  BufferPool pool(16, &disk);
  auto page = pool.NewPage();
  PageId id = page.value()->page_id();
  (void)pool.UnpinPage(id, true);
  for (auto _ : state) {
    auto p = pool.FetchPage(id);
    benchmark::DoNotOptimize(p.value());
    (void)pool.UnpinPage(id, false);
  }
}
BENCHMARK(BM_BufferPoolHit);

void BM_BufferPoolMiss(benchmark::State& state) {
  DiskManager disk;
  BufferPool pool(2, &disk);
  std::vector<PageId> ids;
  for (int i = 0; i < 64; ++i) {
    auto page = pool.NewPage();
    ids.push_back(page.value()->page_id());
    (void)pool.UnpinPage(ids.back(), true);
  }
  size_t next = 0;
  for (auto _ : state) {
    auto p = pool.FetchPage(ids[next]);
    benchmark::DoNotOptimize(p.value());
    (void)pool.UnpinPage(ids[next], false);
    next = (next + 7) % ids.size();  // defeat the 2-frame cache
  }
}
BENCHMARK(BM_BufferPoolMiss);

void BM_UnionFindComponents(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  std::vector<GroundClause> clauses = MakeExample1Mrf(n);
  for (auto _ : state) {
    ComponentSet cs = DetectComponents(2 * n, clauses);
    benchmark::DoNotOptimize(cs.num_components());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_UnionFindComponents)->Arg(10000);

void BM_GroundRc(benchmark::State& state) {
  RcParams params;
  params.num_clusters = static_cast<int>(state.range(0));
  params.papers_per_cluster = 8;
  Dataset ds = MakeRcDataset(params).TakeValue();
  for (auto _ : state) {
    BottomUpGrounder grounder(ds.program, ds.evidence);
    auto g = grounder.Ground();
    benchmark::DoNotOptimize(g.value().clauses.num_clauses());
  }
}
BENCHMARK(BM_GroundRc)->Arg(10)->Arg(40)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tuffy

// Custom main: run the registered microbenchmarks, then emit one
// machine-readable flip-rate line (see bench_common.h) so the search-
// kernel trajectory can be tracked across PRs alongside the
// --benchmark_format=json output.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  using namespace tuffy;  // NOLINT
  std::vector<GroundClause> clauses = MakeExample1Mrf(10000);
  Problem p = MakeWholeProblem(20000, clauses);
  WalkSatOptions opts;
  Rng rng(3);
  IncrementalWalkSat search(&p, opts, &rng);
  Timer timer;
  const uint64_t kFlips = 2000000;
  uint64_t done = search.RunFlips(kFlips);
  double seconds = timer.ElapsedSeconds();
  bench::PrintJsonLine("micro_ops_walksat_flips", "example1_n10000",
                       "incremental",
                       seconds > 0 ? static_cast<double>(done) / seconds : 0,
                       seconds, done, search.best_cost());
  return 0;
}
