// Table 5: Tuffy vs Tuffy-p (component-aware search vs whole-MRF search).
//
// Paper values:        LP     IE     RC     ER
//   #components        1      5341   489    1
//   Tuffy-p RAM        9MB    8MB    19MB   184MB
//   Tuffy RAM          9MB    8MB    15MB   184MB
//   Tuffy-p cost       2534   1933   1943   18717
//   Tuffy cost         2534   1635   1281   18717
//
// Shape to reproduce: on multi-component datasets (IE, RC) the
// component-aware search reaches strictly lower cost with the same flip
// budget and a smaller footprint; on single-component datasets (LP, ER)
// the two coincide.

#include "bench/bench_common.h"

using namespace tuffy;         // NOLINT
using namespace tuffy::bench;  // NOLINT

int main() {
  PrintHeader("Table 5: Tuffy vs Tuffy-p (same flip budget)");
  std::printf("%-10s %12s %12s %12s %12s %12s\n", "dataset", "components",
              "TuffyP_RAM", "Tuffy_RAM", "TuffyP_cost", "Tuffy_cost");
  const uint64_t kFlips = 1000000;
  for (const Dataset& ds : AllBenchDatasets()) {
    EngineOptions popts;
    popts.search_mode = SearchMode::kInMemory;
    popts.total_flips = kFlips;
    EngineResult rp = MustRun(ds, popts);

    EngineOptions copts;
    copts.search_mode = SearchMode::kComponentAware;
    copts.total_flips = kFlips;
    // Memory budget: the batch scheduler only needs one batch in memory,
    // so cap batches at roughly a quarter of the whole problem.
    copts.memory_budget_bytes = rp.peak_search_bytes / 4;
    EngineResult rc = MustRun(ds, copts);

    std::printf("%-10s %12zu %12s %12s %12.1f %12.1f\n", ds.name.c_str(),
                rc.num_components,
                FormatBytes(static_cast<int64_t>(rp.peak_search_bytes)).c_str(),
                FormatBytes(static_cast<int64_t>(rc.peak_search_bytes)).c_str(),
                rp.total_cost, rc.total_cost);
  }
  std::printf(
      "\nShape check vs paper Table 5: component-aware search wins on the\n"
      "multi-component datasets (IE, RC) in both cost and RAM; on the\n"
      "single-component datasets (LP, ER) partitioning is a no-op.\n");
  return 0;
}
