// Figure 3: time-cost plots of Alchemy vs Tuffy on all four datasets.
// Each curve tracks the best solution cost found up to each moment; a
// curve begins when that system finishes grounding (the L-shapes of the
// paper: search converges quickly relative to grounding).
//
// Shape to reproduce: Tuffy's curves start far earlier (faster
// grounding) and drop to equal-or-lower cost; on the multi-component
// datasets (IE, RC) Tuffy's final cost is substantially lower.
//
// Output: "<series> <seconds> <cost>" rows, gnuplot-friendly.

#include "bench/bench_common.h"

using namespace tuffy;         // NOLINT
using namespace tuffy::bench;  // NOLINT

int main() {
  PrintHeader("Figure 3: time-cost, Alchemy vs Tuffy");
  const uint64_t kFlips = 3000000;
  for (const Dataset& ds : AllBenchDatasets()) {
    std::printf("\n# dataset %s\n", ds.name.c_str());

    EngineOptions alchemy;
    alchemy.grounding_mode = GroundingMode::kTopDown;
    alchemy.search_mode = SearchMode::kInMemory;
    alchemy.total_flips = kFlips;
    alchemy.timeout_seconds = 20.0;
    EngineResult ra = MustRun(ds, alchemy);
    PrintTrace(ds.name + "/Alchemy", ra.trace, ra.grounding_seconds,
               ra.grounding.fixed_cost);

    EngineOptions tuffy;
    tuffy.search_mode = SearchMode::kComponentAware;
    tuffy.total_flips = kFlips;
    tuffy.rounds = 16;
    tuffy.timeout_seconds = 20.0;
    EngineResult rt = MustRun(ds, tuffy);
    PrintTrace(ds.name + "/Tuffy", rt.trace, rt.grounding_seconds,
               rt.grounding.fixed_cost);

    std::printf("# %s summary: Alchemy ground %.2fs final %.1f | "
                "Tuffy ground %.2fs final %.1f\n",
                ds.name.c_str(), ra.grounding_seconds, ra.total_cost,
                rt.grounding_seconds, rt.total_cost);
  }
  return 0;
}
