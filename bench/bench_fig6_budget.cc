// Figure 6: time-cost plots of Tuffy under different memory budgets
// (Section 3.4). The budget bounds the partition size fed to Algorithm 3;
// Gauss-Seidel sweeps then coordinate the partitions.
//
// Shape to reproduce:
//   * RC (sparse graph): splitting components further *helps* quality --
//     the "13MB" effect, few clauses are cut.
//   * ER (dense graph): aggressive partitioning cuts a large fraction of
//     the clauses and slows convergence.
//   * LP: a coarse partition is beneficial, finer ones detrimental.

#include "bench/bench_common.h"
#include "ground/bottom_up_grounder.h"
#include "mrf/partitioner.h"

using namespace tuffy;         // NOLINT
using namespace tuffy::bench;  // NOLINT

namespace {

void RunBudgets(const Dataset& ds, const std::vector<uint64_t>& budgets) {
  std::printf("\n# dataset %s\n", ds.name.c_str());
  for (uint64_t budget : budgets) {
    EngineOptions opts;
    opts.search_mode = SearchMode::kPartitionAware;
    opts.memory_budget_bytes = budget;
    opts.total_flips = 1500000;
    opts.rounds = 6;
    opts.timeout_seconds = 20.0;
    EngineResult r = MustRun(ds, opts);

    // Cut statistics for the chosen budget.
    PartitionResult pr = PartitionMrf(
        r.grounding.atoms.num_atoms(), r.grounding.clauses.clauses(),
        budget == 0 ? UINT64_MAX : budget / 16);
    std::string series =
        ds.name + "/" + (budget == 0 ? "unbounded" : FormatBytes(budget));
    PrintTrace(series, r.trace, r.grounding_seconds,
               r.grounding.fixed_cost);
    std::printf(
        "# %-22s partitions=%zu cut=%zu/%zu clauses peakRAM=%s final=%.1f\n",
        series.c_str(), pr.num_partitions(), pr.cut_clauses.size(),
        r.grounding.clauses.num_clauses(),
        FormatBytes(static_cast<int64_t>(r.peak_search_bytes)).c_str(),
        r.total_cost);
  }
}

}  // namespace

int main() {
  PrintHeader("Figure 6: Tuffy under different memory budgets");
  Dataset rc = BenchRc();
  RunBudgets(rc, {0, 4096, 1280});
  Dataset lp = BenchLp();
  RunBudgets(lp, {0, 1024 * 1024, 128 * 1024});
  Dataset er = BenchEr();
  RunBudgets(er, {0, 512 * 1024, 64 * 1024});
  return 0;
}
