// Table 6: lesion study of bottom-up grounding. Disabling parts of the
// relational optimizer shows which machinery delivers the speed: with
// only nested-loop joins available, grounding collapses by orders of
// magnitude; the cost-based join order matters far less on these schemas.
//
// Paper values:              LP    IE    RC        ER
//   Full optimizer           6     13    40        106
//   Fixed join order         7     13    43        111
//   Fixed join algorithm     112   306   >36,000   >16,000

#include "bench/bench_common.h"
#include "ground/bottom_up_grounder.h"
#include "util/timer.h"

using namespace tuffy;         // NOLINT
using namespace tuffy::bench;  // NOLINT

namespace {

double GroundWith(const Dataset& ds, const OptimizerOptions& opts) {
  Timer t;
  BottomUpGrounder g(ds.program, ds.evidence, GroundingOptions{}, opts);
  auto r = g.Ground();
  if (!r.ok()) {
    std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
    std::exit(1);
  }
  return t.ElapsedSeconds();
}

}  // namespace

int main() {
  PrintHeader("Table 6: grounding lesion study (seconds)");
  std::printf("%-24s %10s %10s %10s %10s\n", "configuration", "LP", "IE",
              "RC", "ER");
  std::vector<Dataset> datasets;
  datasets.push_back(GroundingScaleLp());
  datasets.push_back(BenchIe());
  datasets.push_back(GroundingScaleRc());
  datasets.push_back(BenchEr());

  auto run_row = [&](const char* label, OptimizerOptions opts) {
    std::printf("%-24s", label);
    for (const Dataset& ds : datasets) {
      std::printf(" %10.3f", GroundWith(ds, opts));
      std::fflush(stdout);
    }
    std::printf("\n");
  };

  run_row("full optimizer", OptimizerOptions{});

  OptimizerOptions fixed_order;
  fixed_order.fixed_join_order = true;
  run_row("fixed join order", fixed_order);

  OptimizerOptions nlj_only;
  nlj_only.enable_hash_join = false;
  nlj_only.enable_merge_join = false;
  run_row("fixed join algorithm", nlj_only);

  OptimizerOptions no_antijoin;
  no_antijoin.enable_antijoin_pruning = false;
  run_row("no anti-join pruning", no_antijoin);

  std::printf(
      "\nShape check vs paper Table 6: forcing nested-loop joins is the\n"
      "crippling lesion; fixing the join order costs little on these\n"
      "schemas. Join algorithms (hash/sort-merge) are the key RDBMS\n"
      "machinery behind bottom-up grounding.\n");
  return 0;
}
