// Serving-layer benchmark: a standing RC session absorbing small
// evidence deltas (~1% of the evidence each) versus from-scratch
// inference on every change. Reports delta throughput, warm vs cold
// latency, and the fraction of MRF components each delta re-searched.
//
// BENCH_JSON schema:
//   {"bench":"serving","dataset":"RC","system":"session",
//    "cold_seconds":..., "open_seconds":..., "warm_seconds_avg":...,
//    "speedup":..., "deltas_per_sec":...,
//    "frac_components_researched":..., "session_cost":...,
//    "fresh_cost":..., "ground_seconds_avg":...,
//    "ground_seconds_avg_full":..., "binding_ground_speedup":...,
//    "bindings_resolved_avg":...}
//
// ground_seconds_avg is the binding-level delta grounding (join only the
// delta rows against the rest of each touched rule); _full re-runs the
// touched rules' whole queries. The ratio is the binding-level win; the
// final costs of both must match the from-scratch run exactly.
//
// A durability lesion follows (docs/DURABILITY.md): the same delta
// stream through wal_off / wal_nosync / wal_fsync+snapshots sessions,
// then a snapshot+replay restart. Emits one
//   BENCH_JSON {"bench":"serving_durability","variant":...}
// line per variant with the per-delta logging overhead, and for the
// restart the Recover wall time plus a bit-identity check against the
// pre-restart session.
//
// Last, an observability lesion (docs/OBSERVABILITY.md): the identical
// stream with metrics + per-delta tracing enabled vs the kill switch
// off. Instrumentation must not steer inference — the final truth
// vector and MAP cost are checked bit-identical — and its cost is the
//   BENCH_JSON {"bench":"serving_obs","overhead_frac":...}
// line, which the <5%-per-delta budget in ISSUE terms is judged on.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "obs/trace.h"
#include "serve/inference_session.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace tuffy;
using namespace tuffy::bench;

namespace {

// Search-dominant budget: serving workloads run long search budgets over
// a standing MRF, which is exactly where warm starts pay.
constexpr uint64_t kFlips = 8000000;
constexpr int kDeltas = 12;

Dataset ServingRc() {
  RcParams p;
  p.num_clusters = 60;
  p.papers_per_cluster = 10;
  p.num_categories = 6;
  p.labeled_fraction = 0.5;
  auto r = MakeRcDataset(p);
  if (!r.ok()) {
    std::fprintf(stderr, "RC generation failed: %s\n",
                 r.status().ToString().c_str());
    std::exit(1);
  }
  return r.TakeValue();
}

EngineOptions ColdOptions() {
  EngineOptions opts;
  opts.search_mode = SearchMode::kComponentAware;
  opts.grounding.lazy_closure = false;  // session grounding semantics
  opts.total_flips = kFlips;
  opts.seed = 42;
  return opts;
}

}  // namespace

int main() {
  PrintHeader("Serving: delta grounding + warm-started search vs cold runs");
  Dataset ds = ServingRc();

  // Cold baseline: one full ground-and-search run.
  Timer cold_timer;
  EngineResult cold = MustRun(ds, ColdOptions());
  double cold_seconds = cold_timer.ElapsedSeconds();
  std::printf("cold Infer: %zu atoms, %zu clauses, %zu components, "
              "cost %.2f, %.3fs\n",
              cold.grounding.atoms.num_atoms(),
              cold.grounding.clauses.num_clauses(), cold.num_components,
              cold.total_cost, cold_seconds);

  // Standing session.
  SessionOptions sopts;
  sopts.total_flips = kFlips;
  sopts.seed = 42;
  InferenceSession session(ds.program, sopts);
  Timer open_timer;
  Status open = session.Open(ds.evidence);
  if (!open.ok()) {
    std::fprintf(stderr, "session open failed: %s\n",
                 open.ToString().c_str());
    return 1;
  }
  double open_seconds = open_timer.ElapsedSeconds();
  std::printf("session open: cost %.2f, %zu components, %.3fs\n",
              session.map_cost(), session.num_components(), open_seconds);

  // Delta stream: each delta relabels one paper (retract + assert) —
  // two evidence atoms out of thousands, confined to one cluster.
  PredicateId cat = ds.program.FindPredicate("cat").value();
  std::vector<GroundAtom> labels;
  for (const auto& [atom, truth] : ds.evidence.entries()) {
    if (atom.pred == cat && truth) labels.push_back(atom);
  }
  ConstantId other_cat = ds.program.symbols().Find("Theory");
  Rng rng(7);
  std::vector<EvidenceDelta> deltas;
  EvidenceDb accumulated = ds.evidence;
  for (int d = 0; d < kDeltas; ++d) {
    const GroundAtom& victim = labels[rng.Uniform(labels.size())];
    EvidenceDelta delta;
    delta.Retract(victim);
    GroundAtom relabeled = victim;
    relabeled.args[1] =
        relabeled.args[1] == other_cat
            ? ds.program.symbols().Find("Networking")
            : other_cat;
    delta.Assert(relabeled, true);
    deltas.push_back(delta);
    accumulated.Remove(victim);
    accumulated.Add(relabeled, true);
  }

  double warm_seconds_total = 0.0;
  double frac_researched_total = 0.0;
  double ground_seconds_total = 0.0;
  double bindings_total = 0.0;
  double maintenance_rows_total = 0.0;
  std::vector<MetricSample> warm_base = MetricsBaseline();
  for (int d = 0; d < kDeltas; ++d) {
    Timer delta_timer;
    auto r = session.ApplyDelta(deltas[d]);
    if (!r.ok()) {
      std::fprintf(stderr, "delta %d failed: %s\n", d,
                   r.status().ToString().c_str());
      return 1;
    }
    double seconds = delta_timer.ElapsedSeconds();
    warm_seconds_total += seconds;
    ground_seconds_total += r.value().edits.ground_seconds;
    bindings_total += static_cast<double>(r.value().edits.bindings_resolved);
    maintenance_rows_total +=
        static_cast<double>(r.value().edits.maintenance_rows);
    double frac = r.value().components_total > 0
                      ? static_cast<double>(r.value().components_dirty) /
                            static_cast<double>(r.value().components_total)
                      : 0.0;
    frac_researched_total += frac;
    std::printf(
        "delta %2d: %.3fs (ground %.3fs, %zu bindings), %zu/%zu components "
        "re-searched (%.1f%%), %llu flips, cost %.2f\n",
        d, seconds, r.value().edits.ground_seconds,
        r.value().edits.bindings_resolved, r.value().components_dirty,
        r.value().components_total, 100 * frac,
        static_cast<unsigned long long>(r.value().flips),
        r.value().map_cost);
  }

  // Binding-level lesion: the same delta stream with full per-rule
  // re-grounding (binding_level_deltas off). Grounding cost scales with
  // the touched relations' sizes there; the final cost must not move.
  SessionOptions full_opts = sopts;
  full_opts.grounding.binding_level_deltas = false;
  InferenceSession full_session(ds.program, full_opts);
  double full_ground_seconds_total = 0.0;
  double full_session_cost = 0.0;
  {
    Status full_open = full_session.Open(ds.evidence);
    if (!full_open.ok()) {
      std::fprintf(stderr, "full-reground session open failed: %s\n",
                   full_open.ToString().c_str());
      return 1;
    }
    for (int d = 0; d < kDeltas; ++d) {
      auto r = full_session.ApplyDelta(deltas[d]);
      if (!r.ok()) {
        std::fprintf(stderr, "full-reground delta %d failed: %s\n", d,
                     r.status().ToString().c_str());
        return 1;
      }
      full_ground_seconds_total += r.value().edits.ground_seconds;
    }
    full_session_cost = full_session.map_cost();
  }

  // Equivalence spot check: a from-scratch run over the accumulated
  // evidence (identical grounding semantics).
  TuffyEngine fresh_engine(ds.program, accumulated, ColdOptions());
  auto fresh = fresh_engine.Run();
  if (!fresh.ok()) {
    std::fprintf(stderr, "fresh engine failed: %s\n",
                 fresh.status().ToString().c_str());
    return 1;
  }
  double session_cost = session.map_cost();
  double fresh_cost = fresh.value().total_cost;
  std::printf(
      "final: session cost %.4f vs fresh cost %.4f (eval %.4f, "
      "full-reground session %.4f)\n",
      session_cost, fresh_cost, session.EvalCurrentCost(),
      full_session_cost);
  if (session_cost != fresh_cost || full_session_cost != fresh_cost) {
    std::fprintf(stderr,
                 "FAIL: session costs diverged from the from-scratch run\n");
    return 1;
  }
  double ground_avg = ground_seconds_total / kDeltas;
  double full_ground_avg = full_ground_seconds_total / kDeltas;
  std::printf(
      "delta grounding: binding-level %.4fs/delta (%.0f bindings avg) vs "
      "full re-ground %.4fs/delta (%.1fx)\n",
      ground_avg, bindings_total / kDeltas, full_ground_avg,
      ground_avg > 0 ? full_ground_avg / ground_avg : 0.0);
  std::printf(
      "table maintenance: %.0f rows/delta from the touched predicates' "
      "side tables (evidence map: %zu entries, never rescanned)\n",
      maintenance_rows_total / kDeltas, accumulated.num_evidence());

  double warm_avg = warm_seconds_total / kDeltas;
  double frac_avg = frac_researched_total / kDeltas;
  {
    BenchJson row("serving");
    row.Str("dataset", ds.name)
        .Str("system", "session")
        .Num("cold_seconds", cold_seconds)
        .Num("open_seconds", open_seconds)
        .Num("warm_seconds_avg", warm_avg)
        .Num("speedup", warm_avg > 0 ? cold_seconds / warm_avg : 0.0, 2)
        .Num("deltas_per_sec", warm_avg > 0 ? 1.0 / warm_avg : 0.0, 2)
        .Num("frac_components_researched", frac_avg)
        .Num("session_cost", session_cost)
        .Num("fresh_cost", fresh_cost)
        .Num("ground_seconds_avg", ground_avg, 5)
        .Num("ground_seconds_avg_full", full_ground_avg, 5)
        .Num("binding_ground_speedup",
             ground_avg > 0 ? full_ground_avg / ground_avg : 0.0, 2)
        .Num("bindings_resolved_avg", bindings_total / kDeltas, 1)
        .Num("maintenance_rows_avg", maintenance_rows_total / kDeltas, 1)
        .Int("evidence_rows", accumulated.num_evidence())
        .Metrics(warm_base)
        .Emit();
  }

  // ------------------------------------------------- durability lesion
  // What does making the delta stream crash-safe cost? Three sessions
  // run the identical stream: no WAL, WAL without fsync (OS write-back
  // is the commit point), and the full discipline (per-delta fsync +
  // a snapshot every 4 deltas). Durability knobs never change results,
  // so every variant must land on the volatile session's exact cost.
  PrintHeader("Durability lesion: WAL / fsync / snapshot overhead");
  struct DurabilityVariant {
    const char* name;
    bool wal;
    bool fsync;
    uint32_t snapshot_every;
  };
  const DurabilityVariant variants[] = {
      {"wal_off", false, false, 0},
      {"wal_nosync", true, false, 0},
      {"wal_fsync_snap4", true, true, 4},
  };
  double baseline_avg = 0.0;
  std::string fsync_dir;  // durable state of the last variant, kept for
                          // the restart measurement below
  for (const DurabilityVariant& variant : variants) {
    SessionOptions dopts = sopts;
    if (variant.wal) {
      std::string templ = "/tmp/bench_serving_wal_XXXXXX";
      if (::mkdtemp(templ.data()) == nullptr) {
        std::fprintf(stderr, "mkdtemp failed\n");
        return 1;
      }
      dopts.wal_dir = templ + "/session";
      dopts.wal_fsync = variant.fsync;
      dopts.snapshot_every = variant.snapshot_every;
      if (variant.fsync) fsync_dir = dopts.wal_dir;
    }
    InferenceSession durable(ds.program, dopts);
    Status dopen = durable.Open(ds.evidence);
    if (!dopen.ok()) {
      std::fprintf(stderr, "%s open failed: %s\n", variant.name,
                   dopen.ToString().c_str());
      return 1;
    }
    Timer stream_timer;
    for (int d = 0; d < kDeltas; ++d) {
      auto r = durable.ApplyDelta(deltas[d]);
      if (!r.ok()) {
        std::fprintf(stderr, "%s delta %d failed: %s\n", variant.name, d,
                     r.status().ToString().c_str());
        return 1;
      }
    }
    double stream_seconds = stream_timer.ElapsedSeconds();
    double variant_avg = stream_seconds / kDeltas;
    if (!variant.wal) baseline_avg = variant_avg;
    double overhead = baseline_avg > 0
                          ? (variant_avg - baseline_avg) / baseline_avg
                          : 0.0;
    if (durable.map_cost() != session_cost) {
      std::fprintf(stderr, "FAIL: %s cost %.6f != volatile cost %.6f\n",
                   variant.name, durable.map_cost(), session_cost);
      return 1;
    }
    std::printf("%-16s %.4fs/delta (logging overhead %+.1f%%), cost %.4f\n",
                variant.name, variant_avg, 100 * overhead,
                durable.map_cost());
    {
      BenchJson row("serving_durability");
      row.Str("dataset", ds.name)
          .Str("variant", variant.name)
          .Num("warm_seconds_avg", variant_avg, 5)
          .Num("logging_overhead_frac", overhead)
          .Num("session_cost", durable.map_cost())
          .Emit();
    }
    if (variant.fsync) {
      // Restart: throw the resident session away and rebuild it from the
      // newest snapshot + WAL suffix, as a crashed server would.
      std::vector<uint8_t> truth_before = durable.truth();
      // (The session object is still alive; Recover reads only disk.)
      Timer recover_timer;
      RecoveryStats rstats;
      auto recovered = InferenceSession::Recover(ds.program, dopts, nullptr,
                                                 &rstats);
      double recover_seconds = recover_timer.ElapsedSeconds();
      if (!recovered.ok()) {
        std::fprintf(stderr, "restart recovery failed: %s\n",
                     recovered.status().ToString().c_str());
        return 1;
      }
      bool identical = recovered.value()->truth() == truth_before &&
                       recovered.value()->map_cost() == session_cost;
      std::printf(
          "restart: recovered in %.4fs (snapshot %llu, %llu records "
          "replayed) — %s\n",
          recover_seconds, (unsigned long long)rstats.snapshot_seq,
          (unsigned long long)rstats.records_replayed,
          identical ? "bit-identical" : "MISMATCH");
      {
        BenchJson row("serving_durability");
        row.Str("dataset", ds.name)
            .Str("variant", "restart_snapshot_replay")
            .Num("recover_seconds", recover_seconds)
            .Int("records_replayed", rstats.records_replayed)
            .Num("open_seconds_cold", open_seconds)
            .Bool("bit_identical", identical)
            .Emit();
      }
      if (!identical) return 1;
    }
  }

  // ---------------------------------------------- observability lesion
  // The identical stream with instrumentation fully on (metrics + a
  // per-delta TraceBuilder, the net server's hot path) vs the kill
  // switch off and no tracing. Instrumentation reads clocks and bumps
  // atomics but never feeds back into inference, so the final truth
  // vector and MAP cost must be bit-identical; the per-delta overhead
  // is the observability budget (<5%, docs/OBSERVABILITY.md).
  PrintHeader("Observability lesion: metrics + tracing on vs off");
  double obs_avg[2] = {0.0, 0.0};
  double obs_cost[2] = {0.0, 0.0};
  std::vector<uint8_t> obs_truth[2];
  for (int enabled = 1; enabled >= 0; --enabled) {
    SetMetricsEnabled(enabled != 0);
    InferenceSession obs_session(ds.program, sopts);
    Status oopen = obs_session.Open(ds.evidence);
    if (!oopen.ok()) {
      std::fprintf(stderr, "obs lesion open failed: %s\n",
                   oopen.ToString().c_str());
      return 1;
    }
    Timer stream_timer;
    for (int d = 0; d < kDeltas; ++d) {
      TraceBuilder trace("bench");
      auto r = obs_session.ApplyDelta(deltas[d],
                                      enabled != 0 ? &trace : nullptr);
      if (!r.ok()) {
        std::fprintf(stderr, "obs lesion delta %d failed: %s\n", d,
                     r.status().ToString().c_str());
        return 1;
      }
    }
    obs_avg[enabled] = stream_timer.ElapsedSeconds() / kDeltas;
    obs_cost[enabled] = obs_session.map_cost();
    obs_truth[enabled] = obs_session.truth();
  }
  SetMetricsEnabled(true);
  const bool obs_identical = obs_truth[0] == obs_truth[1] &&
                             obs_cost[0] == obs_cost[1] &&
                             obs_cost[1] == session_cost;
  const double obs_overhead =
      obs_avg[0] > 0 ? (obs_avg[1] - obs_avg[0]) / obs_avg[0] : 0.0;
  std::printf(
      "obs on %.4fs/delta vs off %.4fs/delta (overhead %+.1f%%), "
      "cost %.4f vs %.4f — %s\n",
      obs_avg[1], obs_avg[0], 100 * obs_overhead, obs_cost[1], obs_cost[0],
      obs_identical ? "bit-identical" : "MISMATCH");
  {
    BenchJson row("serving_obs");
    row.Str("dataset", ds.name)
        .Num("warm_seconds_avg_on", obs_avg[1], 5)
        .Num("warm_seconds_avg_off", obs_avg[0], 5)
        .Num("overhead_frac", obs_overhead)
        .Bool("bit_identical", obs_identical)
        .Emit();
  }
  if (!obs_identical) {
    std::fprintf(stderr,
                 "FAIL: instrumentation changed inference results\n");
    return 1;
  }
  return 0;
}
