// Table 3: flipping rates (#WalkSAT flips/second).
//
// Paper values:    LP      IE    RC      ER
//   Alchemy        0.20M   1M    1.9K    0.9K
//   Tuffy-mm       0.9     13    0.9     0.03
//   Tuffy-p        0.11M   0.39M 0.17M   7.9K
//
// Shape to reproduce: the in-memory implementations (Alchemy, Tuffy-p)
// flip 3-5 orders of magnitude faster than the RDBMS-resident search
// (Tuffy-mm), whose rate is bounded by page I/O per step (Appendix C.1).

#include "bench/bench_common.h"
#include "ground/bottom_up_grounder.h"
#include "infer/disk_walksat.h"

using namespace tuffy;         // NOLINT
using namespace tuffy::bench;  // NOLINT

int main() {
  PrintHeader("Table 3: flipping rates (flips/sec)");
  std::printf("%-10s %14s %14s %14s\n", "dataset", "Alchemy", "Tuffy-mm",
              "Tuffy-p");
  for (const Dataset& ds : AllBenchDatasets()) {
    BottomUpGrounder grounder(ds.program, ds.evidence);
    auto g = grounder.Ground();
    if (!g.ok()) return 1;
    Problem whole = MakeWholeProblem(g.value().atoms.num_atoms(),
                                     g.value().clauses.clauses());

    // Alchemy and Tuffy-p share the same in-memory WalkSAT; run twice
    // with different seeds (they are distinct systems in the paper that
    // happen to have comparable in-memory search engines).
    WalkSatOptions wopts;
    wopts.max_flips = 2000000;
    wopts.timeout_seconds = 5.0;
    Rng rng_a(1);
    WalkSatResult alchemy = WalkSat(&whole, wopts, &rng_a).Run();
    Rng rng_p(2);
    WalkSatResult tuffy_p = WalkSat(&whole, wopts, &rng_p).Run();

    DiskWalkSatOptions dopts;
    dopts.max_flips = 25;
    dopts.io_latency_us = 20;  // commodity-SSD-ish page latency
    dopts.buffer_frames = 64;
    dopts.timeout_seconds = 20.0;
    auto disk = DiskWalkSat::Create(whole, dopts);
    double mm_rate = 0.0;
    if (disk.ok()) {
      Rng rng_d(3);
      WalkSatResult mm = disk.value()->Run(&rng_d);
      mm_rate = mm.FlipsPerSecond();
      PrintJsonLine("table3_fliprate", ds.name, "tuffy-mm", mm_rate,
                    mm.seconds, mm.flips, mm.best_cost);
    }
    std::printf("%-10s %14.0f %14.2f %14.0f\n", ds.name.c_str(),
                alchemy.FlipsPerSecond(), mm_rate,
                tuffy_p.FlipsPerSecond());
    PrintJsonLine("table3_fliprate", ds.name, "alchemy",
                  alchemy.FlipsPerSecond(), alchemy.seconds, alchemy.flips,
                  alchemy.best_cost);
    PrintJsonLine("table3_fliprate", ds.name, "tuffy-p",
                  tuffy_p.FlipsPerSecond(), tuffy_p.seconds, tuffy_p.flips,
                  tuffy_p.best_cost);
  }
  std::printf(
      "\nShape check vs paper Table 3: in-memory search sustains 10^5-10^7\n"
      "flips/sec while RDBMS-resident search manages a few per second --\n"
      "the 3-5 orders-of-magnitude gap that motivates the hybrid\n"
      "architecture (Section 3.2).\n");
  return 0;
}
