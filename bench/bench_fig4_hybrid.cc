// Figure 4: time-cost plots of Alchemy vs Tuffy-p (no partitioning) vs
// Tuffy-mm (RDBMS-resident search) on LP and RC.
//
// Shape to reproduce: Tuffy-p and Alchemy converge to comparable costs
// (same search engine), with Tuffy-p starting earlier on RC thanks to
// faster grounding; Tuffy-mm barely moves in the same wall-clock window
// because each flip costs page I/O.

#include "bench/bench_common.h"
#include "ground/bottom_up_grounder.h"
#include "infer/disk_walksat.h"

using namespace tuffy;         // NOLINT
using namespace tuffy::bench;  // NOLINT

int main() {
  PrintHeader("Figure 4: Alchemy vs Tuffy-p vs Tuffy-mm");
  Dataset lp = BenchLp();
  Dataset rc = BenchRc();
  for (const Dataset* dsp : {&lp, &rc}) {
    const Dataset& ds = *dsp;
    std::printf("\n# dataset %s\n", ds.name.c_str());

    EngineOptions alchemy;
    alchemy.grounding_mode = GroundingMode::kTopDown;
    alchemy.search_mode = SearchMode::kInMemory;
    alchemy.total_flips = 2000000;
    alchemy.timeout_seconds = 15.0;
    EngineResult ra = MustRun(ds, alchemy);
    PrintTrace(ds.name + "/Alchemy", ra.trace, ra.grounding_seconds,
               ra.grounding.fixed_cost);

    EngineOptions tp;
    tp.search_mode = SearchMode::kInMemory;
    tp.total_flips = 2000000;
    tp.timeout_seconds = 15.0;
    EngineResult rp = MustRun(ds, tp);
    PrintTrace(ds.name + "/Tuffy-p", rp.trace, rp.grounding_seconds,
               rp.grounding.fixed_cost);

    EngineOptions mm;
    mm.search_mode = SearchMode::kDisk;
    mm.total_flips = 200;
    mm.timeout_seconds = 15.0;
    mm.disk_io_latency_us = 20;
    EngineResult rm = MustRun(ds, mm);
    PrintTrace(ds.name + "/Tuffy-mm", rm.trace, rm.grounding_seconds,
               rm.grounding.fixed_cost);

    std::printf(
        "# %s summary: Alchemy %.1f @ %llu flips | Tuffy-p %.1f @ %llu | "
        "Tuffy-mm %.1f @ %llu flips in %.1fs\n",
        ds.name.c_str(), ra.total_cost, (unsigned long long)ra.flips,
        rp.total_cost, (unsigned long long)rp.flips, rm.total_cost,
        (unsigned long long)rm.flips, rm.search_seconds);
  }
  return 0;
}
