// Table 1: dataset statistics. Regenerates the paper's per-dataset
// counts (#relations, #rules, #entities, #evidence tuples, #query atoms,
// #components) for the synthetic LP / IE / RC / ER workloads.
//
// Paper values (for shape comparison):
//              LP     IE      RC     ER
//  relations   22     18      4      10
//  rules       94     1K      15     3.8K
//  entities    302    2.6K    51K    510
//  evidence    731    0.25M   0.43M  676
//  queryatoms  4.6K   0.34M   10K    16K
//  components  1      5341    489    1

#include "bench/bench_common.h"
#include "ground/bottom_up_grounder.h"
#include "mrf/components.h"

using namespace tuffy;        // NOLINT
using namespace tuffy::bench;  // NOLINT

int main() {
  PrintHeader("Table 1: dataset statistics (synthetic reproductions)");
  std::printf("%-10s %10s %8s %9s %10s %12s %12s\n", "dataset", "relations",
              "rules", "entities", "evidence", "query_atoms", "components");
  for (const Dataset& ds : AllBenchDatasets()) {
    BottomUpGrounder grounder(ds.program, ds.evidence);
    auto g = grounder.Ground();
    if (!g.ok()) {
      std::fprintf(stderr, "%s: %s\n", ds.name.c_str(),
                   g.status().ToString().c_str());
      return 1;
    }
    ComponentSet cs = DetectComponents(g.value().atoms.num_atoms(),
                                       g.value().clauses.clauses());
    std::printf("%-10s %10zu %8zu %9zu %10zu %12zu %12zu\n", ds.name.c_str(),
                ds.program.num_predicates(), ds.program.clauses().size(),
                ds.program.symbols().num_constants(),
                ds.evidence.num_evidence(), g.value().atoms.num_atoms(),
                cs.num_components());
  }
  std::printf(
      "\nShape check vs paper Table 1: LP and ER ground to one (or few)\n"
      "large component(s); IE grounds to thousands of small components\n"
      "(one per citation); RC grounds to one component per paper cluster.\n");
  return 0;
}
