// Table 4: space efficiency of Alchemy vs Tuffy-p (no partitioning).
//
// Paper values:        LP      IE      RC      ER
//   clause table       5.2MB   0.6MB   4.8MB   164MB
//   Alchemy RAM        411MB   206MB   2.8GB   3.5GB
//   Tuffy-p RAM        9MB     8MB     19MB    184MB
//
// Shape to reproduce: Alchemy's purely in-memory architecture pays for
// the peak *grounding* working set (which dwarfs the final clause table,
// e.g. 2.8GB to produce 4.8MB on RC), while Tuffy grounds in the RDBMS
// and only needs RAM for the loaded clauses plus search state.

#include "bench/bench_common.h"
#include "util/mem_tracker.h"

using namespace tuffy;         // NOLINT
using namespace tuffy::bench;  // NOLINT

int main() {
  PrintHeader("Table 4: space efficiency (peak bytes)");
  std::printf("%-10s %14s %14s %14s %8s\n", "dataset", "clause_table",
              "Alchemy_RAM", "TuffyP_RAM", "ratio");
  for (const Dataset& ds : AllBenchDatasets()) {
    MemTracker& mt = MemTracker::Global();

    // Alchemy: top-down grounding and search share one address space;
    // its footprint is the grounding working set + clause table + search.
    mt.Reset();
    EngineOptions aopts;
    aopts.grounding_mode = GroundingMode::kTopDown;
    aopts.search_mode = SearchMode::kInMemory;
    aopts.total_flips = 50000;
    EngineResult ar = MustRun(ds, aopts);
    int64_t alchemy_ram = mt.PeakBytes(MemCategory::kGrounding) +
                          static_cast<int64_t>(ar.clause_table_bytes) +
                          mt.PeakBytes(MemCategory::kSearch);

    // Tuffy-p: grounding state lives in the RDBMS; RAM = loaded clause
    // table + in-memory search state.
    mt.Reset();
    EngineOptions topts;
    topts.search_mode = SearchMode::kInMemory;
    topts.total_flips = 50000;
    EngineResult tr = MustRun(ds, topts);
    int64_t tuffy_ram = static_cast<int64_t>(tr.clause_table_bytes) +
                        mt.PeakBytes(MemCategory::kSearch);

    std::printf("%-10s %14s %14s %14s %7.1fx\n", ds.name.c_str(),
                FormatBytes(static_cast<int64_t>(tr.clause_table_bytes)).c_str(),
                FormatBytes(alchemy_ram).c_str(),
                FormatBytes(tuffy_ram).c_str(),
                static_cast<double>(alchemy_ram) /
                    static_cast<double>(tuffy_ram));
  }
  std::printf(
      "\nShape check vs paper Table 4: the grounding working set (candidate\n"
      "groundings held before the lazy closure prunes them) exceeds the\n"
      "final clause table by a wide margin, so the in-memory baseline\n"
      "needs several times more RAM than the hybrid architecture.\n");
  return 0;
}
