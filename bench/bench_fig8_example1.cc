// Figure 8 + Theorem 3.1: the Example-1 MRF (N independent two-atom
// components). Two experiments:
//
//  (a) Figure 8: time-cost curves of whole-MRF WalkSAT ("Alchemy" and
//      "Tuffy-p") vs component-aware WalkSAT ("Tuffy") with N = 1000.
//      Component-aware search snaps to the optimum (cost N) while the
//      whole-MRF searchers plateau above it.
//
//  (b) Theorem 3.1 scaling: expected flips for WalkSAT to *hit* the
//      optimum on the whole MRF grows exponentially in N, while the
//      component-aware searcher grows linearly (per-component hitting
//      time is O(1), Example 1 gives E[hit] <= 4 per component).

#include "bench/bench_common.h"
#include "infer/component_walksat.h"
#include "mrf/components.h"

using namespace tuffy;         // NOLINT
using namespace tuffy::bench;  // NOLINT

namespace {

/// Flips until the whole-MRF searcher first reaches cost == n (optimal),
/// capped at `max_flips`.
uint64_t WholeMrfHittingFlips(int n, uint64_t max_flips, uint64_t seed) {
  std::vector<GroundClause> clauses = MakeExample1Mrf(n);
  Problem whole = MakeWholeProblem(2 * n, clauses);
  WalkSatOptions opts;
  Rng rng(seed);
  IncrementalWalkSat search(&whole, opts, &rng);
  const double optimum = static_cast<double>(n);
  uint64_t done = 0;
  while (done < max_flips && search.best_cost() > optimum + 1e-9) {
    done += search.RunFlips(64);
    if (search.best_cost() <= optimum + 1e-9) break;
    if (done > 0 && search.flips() < done) break;  // no violated clauses
  }
  return done;
}

uint64_t ComponentHittingFlips(int n, uint64_t max_flips, uint64_t seed) {
  // Component-aware search knows each component's best independently;
  // count the flips until every per-component best reaches its optimum
  // (cost 1 for Example 1: the negative clause stays violated).
  std::vector<GroundClause> clauses = MakeExample1Mrf(n);
  ComponentSet cs = DetectComponents(2 * n, clauses);
  uint64_t total = 0;
  for (size_t i = 0; i < cs.num_components(); ++i) {
    SubProblem sub = BuildSubProblem(clauses, cs.clauses[i], cs.atoms[i]);
    WalkSatOptions opts;
    Rng rng(seed * 1315423911u + i);
    IncrementalWalkSat search(&sub.problem, opts, &rng);
    while (search.best_cost() > 1.0 + 1e-9 && total < max_flips) {
      total += search.RunFlips(1);
    }
  }
  return total;
}

}  // namespace

int main() {
  PrintHeader("Figure 8: Example 1 with 1000 components");
  {
    const int n = 1000;
    std::vector<GroundClause> clauses = MakeExample1Mrf(n);
    Problem whole = MakeWholeProblem(2 * n, clauses);

    for (const char* name : {"Alchemy", "Tuffy-p"}) {
      WalkSatOptions opts;
      opts.max_flips = 2000000;
      opts.trace_every_flips = 50000;
      Rng rng(name[0]);
      WalkSatResult r = WalkSat(&whole, opts, &rng).Run();
      PrintTrace(std::string("Ex1/") + name, r.trace, 0.0, 0.0);
      std::printf("# %s final cost %.0f (optimum %d)\n", name, r.best_cost,
                  n);
    }
    ComponentSet cs = DetectComponents(2 * n, clauses);
    ComponentSearchOptions copts;
    copts.total_flips = 2000000;
    copts.rounds = 20;
    ComponentSearchResult r =
        RunComponentWalkSat(2 * n, clauses, cs, copts, 7);
    PrintTrace("Ex1/Tuffy", r.trace, 0.0, 0.0);
    std::printf("# Tuffy final cost %.0f (optimum %d)\n", r.cost, n);
  }

  PrintHeader("Theorem 3.1: hitting-time scaling on Example 1");
  std::printf("%-6s %18s %18s\n", "N", "whole_MRF_flips",
              "component_flips");
  const uint64_t kCap = 20000000;
  for (int n : {2, 4, 6, 8, 10, 12, 14}) {
    // Average a few trials; the whole-MRF hitting time is a heavy-tailed
    // random variable.
    uint64_t whole_total = 0, comp_total = 0;
    const int kTrials = 5;
    for (int t = 0; t < kTrials; ++t) {
      whole_total += WholeMrfHittingFlips(n, kCap, 100 + t);
      comp_total += ComponentHittingFlips(n, kCap, 200 + t);
    }
    std::printf("%-6d %18.0f %18.0f\n", n,
                static_cast<double>(whole_total) / kTrials,
                static_cast<double>(comp_total) / kTrials);
  }
  std::printf(
      "\nShape check vs Theorem 3.1: whole-MRF flips grow exponentially\n"
      "with the component count (the 2^N check-and-balance effect);\n"
      "component-aware flips grow linearly.\n");
  return 0;
}
