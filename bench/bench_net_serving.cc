// Network serving benchmark: N ∈ {1, 8, 64} concurrent clients, each
// with its own session, streaming relabel deltas through the net/ front
// end on loopback, versus the same workload driven straight into an
// in-process SessionManager. Every client runs the identical delta
// sequence, so all sessions must converge to the same final MAP cost —
// which is also checked against one from-scratch engine run over the
// accumulated evidence (the wire must not change inference).
//
// A final "replicated" row runs the stream against a durable primary
// with a hot standby tailing its WAL: each delta must reach the
// follower and drain repl.lag.records back to 0 before the next one.
//
// BENCH_JSON schema (one line per system × client count):
//   {"bench":"net_serving","system":"net"|"inproc"|"replicated","clients":N,
//    "deltas_per_sec":...,"p50_ms":...,"p99_ms":...,
//    "total_deltas":...,"seconds":...,"final_cost":...,
//    "fresh_cost":...}
// p50/p99 are client-observed per-delta latencies (for the net rows
// that includes framing, loopback, queueing, and the reply).

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "serve/follower_manager.h"
#include "serve/session_manager.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace tuffy;
using namespace tuffy::bench;

namespace {

constexpr uint64_t kFlips = 60000;
constexpr int kDeltasPerClient = 16;
const std::vector<int> kClientCounts = {1, 8, 64};

Dataset NetRc() {
  RcParams p;
  p.num_clusters = 4;
  p.papers_per_cluster = 6;
  // 6 categories so both relabel targets ("Networking", "Theory") exist
  // in the interned domain.
  p.num_categories = 6;
  p.labeled_fraction = 0.6;
  auto r = MakeRcDataset(p);
  if (!r.ok()) {
    std::fprintf(stderr, "RC generation failed: %s\n",
                 r.status().ToString().c_str());
    std::exit(1);
  }
  return r.TakeValue();
}

SessionOptions BenchSessionOptions() {
  SessionOptions opts;
  opts.total_flips = kFlips;
  opts.seed = 42;
  return opts;
}

/// The relabel stream every client applies, in order. Identical across
/// clients so every session ends in the same state.
std::vector<EvidenceDelta> MakeDeltas(const Dataset& ds,
                                      EvidenceDb* accumulated) {
  PredicateId cat = ds.program.FindPredicate("cat").value();
  std::vector<GroundAtom> labels;
  for (const auto& [atom, truth] : ds.evidence.entries()) {
    if (atom.pred == cat && truth) labels.push_back(atom);
  }
  ConstantId cat_a = ds.program.symbols().Find("Networking");
  ConstantId cat_b = ds.program.symbols().Find("Theory");
  if (cat_a < 0 || cat_b < 0) {
    std::fprintf(stderr, "relabel categories missing from the domain\n");
    std::exit(1);
  }
  Rng rng(7);
  std::vector<EvidenceDelta> deltas;
  for (int d = 0; d < kDeltasPerClient; ++d) {
    GroundAtom victim = labels[rng.Uniform(labels.size())];
    EvidenceDelta delta;
    delta.Retract(victim);
    GroundAtom relabeled = victim;
    relabeled.args[1] = relabeled.args[1] == cat_a ? cat_b : cat_a;
    delta.Assert(relabeled, true);
    deltas.push_back(delta);
    if (accumulated != nullptr) {
      accumulated->Remove(victim);
      accumulated->Add(relabeled, true);
    }
    labels[rng.Uniform(labels.size())] = relabeled;
  }
  return deltas;
}

struct RunResult {
  double seconds = 0.0;
  double final_cost = 0.0;
  bool cost_consistent = true;
  HistogramSnapshot latency;
};

void EmitRow(const char* system, int clients, const RunResult& r,
             double fresh_cost, const std::vector<MetricSample>& base) {
  const double total = static_cast<double>(clients) * kDeltasPerClient;
  BenchJson row("net_serving");
  row.Str("system", system)
      .Int("clients", static_cast<uint64_t>(clients))
      .Num("deltas_per_sec", total / r.seconds, 1)
      .Num("p50_ms", r.latency.Percentile(0.50) * 1e3, 3)
      .Num("p99_ms", r.latency.Percentile(0.99) * 1e3, 3)
      .Int("total_deltas", static_cast<uint64_t>(total))
      .Num("seconds", r.seconds)
      .Num("final_cost", r.final_cost)
      .Num("fresh_cost", fresh_cost)
      .Metrics(base)
      .Emit();
}

/// Drives `clients` concurrent sessions over the wire. Sessions are
/// opened before the clock starts; only the delta stream is timed.
RunResult RunNet(const Dataset& ds,
                 const std::vector<EvidenceDelta>& deltas, int clients) {
  ServerOptions opts;
  opts.session = BenchSessionOptions();
  opts.num_workers =
      std::max(2u, std::thread::hardware_concurrency());
  opts.max_queue = static_cast<size_t>(clients) * 2 + 16;
  Server server(ds.program, ds.evidence, opts);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "server start: %s\n", started.ToString().c_str());
    std::exit(1);
  }

  std::vector<Client> conns(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    Status st = conns[c].Connect("127.0.0.1", server.port());
    if (!st.ok()) {
      std::fprintf(stderr, "connect: %s\n", st.ToString().c_str());
      std::exit(1);
    }
    auto open = conns[c].OpenSession("bench-" + std::to_string(c));
    if (!open.ok() || open.value().type != MsgType::kOpenReply) {
      std::fprintf(stderr, "open %d failed\n", c);
      std::exit(1);
    }
  }

  RunResult result;
  // Histogram records are lock-free, so every client thread shares one.
  Histogram latency;
  std::mutex mu;
  Timer timer;
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      double cost = 0.0;
      bool ok = true;
      const std::string session = "bench-" + std::to_string(c);
      // 64 clients can shed for a while; give retries a deep budget so
      // the run measures throughput, not a retry-exhaustion failure.
      RetryPolicy rp;
      rp.max_attempts = 64;
      for (const EvidenceDelta& delta : deltas) {
        NetRequest req;
        req.type = MsgType::kApplyDelta;
        req.session = session;
        req.delta = delta;
        Timer t;
        // Overload shedding is retryable by contract; CallWithRetry's
        // jittered backoff lands every delta (a retryable refusal never
        // touched session state, so per-session ordering still holds).
        auto r = conns[c].CallWithRetry(req, rp);
        if (!r.ok() || r.value().type != MsgType::kDeltaReply) {
          ok = false;
          break;
        }
        latency.RecordAlways(t.ElapsedSeconds());
        cost = r.value().map_cost;
      }
      std::lock_guard<std::mutex> lock(mu);
      if (!ok) {
        result.cost_consistent = false;
      } else if (result.final_cost == 0.0) {
        result.final_cost = cost;
      } else if (std::fabs(result.final_cost - cost) > 1e-6) {
        result.cost_consistent = false;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  result.seconds = timer.ElapsedSeconds();
  result.latency = latency.Snapshot();

  ServerMetrics m = server.metrics();
  std::printf("  net %2d clients: server p50 %.3f ms, p99 %.3f ms, "
              "queue peak %zu, %llu overloaded\n",
              clients, m.delta_p50_ms, m.delta_p99_ms, m.queue_peak,
              (unsigned long long)m.overloaded);
  server.Stop();
  return result;
}

/// The same workload without the wire: N threads calling straight into
/// a SessionManager.
RunResult RunInProcess(const Dataset& ds,
                       const std::vector<EvidenceDelta>& deltas,
                       int clients) {
  SessionManagerOptions mopts;
  mopts.num_threads = 1;
  SessionManager manager(mopts);
  for (int c = 0; c < clients; ++c) {
    auto open = manager.Open("bench-" + std::to_string(c), ds.program,
                             ds.evidence, BenchSessionOptions());
    if (!open.ok()) {
      std::fprintf(stderr, "inproc open %d: %s\n", c,
                   open.status().ToString().c_str());
      std::exit(1);
    }
  }

  RunResult result;
  Histogram latency;
  std::mutex mu;
  Timer timer;
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      double cost = 0.0;
      bool ok = true;
      const std::string session = "bench-" + std::to_string(c);
      for (const EvidenceDelta& delta : deltas) {
        Timer t;
        auto r = manager.ApplyDelta(session, delta);
        if (!r.ok()) {
          ok = false;
          break;
        }
        latency.RecordAlways(t.ElapsedSeconds());
        cost = r.value().map_cost;
      }
      std::lock_guard<std::mutex> lock(mu);
      if (!ok) {
        result.cost_consistent = false;
      } else if (result.final_cost == 0.0) {
        result.final_cost = cost;
      } else if (std::fabs(result.final_cost - cost) > 1e-6) {
        result.cost_consistent = false;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  result.seconds = timer.ElapsedSeconds();
  result.latency = latency.Snapshot();
  return result;
}

/// Replication lesion: a durable single-session primary with one
/// in-process hot standby tailing its WAL over loopback. One client
/// streams the delta sequence through the wire (CallWithRetry); after
/// every delta the bench waits for the follower to reach that position
/// and for the repl.lag.records gauge to drain back to 0 — the
/// "replication keeps up with the write rate" check from the issue.
/// The follower's replicated state must land on the same MAP cost as
/// the primary's reply (and the caller checks both against fresh_cost).
RunResult RunReplication(const Dataset& ds,
                         const std::vector<EvidenceDelta>& deltas) {
  std::string proot = "/tmp/bench_net_repl_p_XXXXXX";
  std::string froot = "/tmp/bench_net_repl_f_XXXXXX";
  if (::mkdtemp(proot.data()) == nullptr ||
      ::mkdtemp(froot.data()) == nullptr) {
    std::fprintf(stderr, "mkdtemp failed\n");
    std::exit(1);
  }

  ServerOptions opts;
  opts.session = BenchSessionOptions();
  opts.num_workers = 2;
  opts.durability_root = proot;
  opts.wal_fsync = false;  // lag drain is the subject, not fsync latency
  opts.repl_heartbeat_seconds = 0.05;
  Server server(ds.program, ds.evidence, opts);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "repl server start: %s\n",
                 started.ToString().c_str());
    std::exit(1);
  }

  const std::string session = "bench-repl";
  Client client;
  if (!client.Connect("127.0.0.1", server.port()).ok()) {
    std::fprintf(stderr, "repl connect failed\n");
    std::exit(1);
  }
  auto open = client.OpenSession(session);
  if (!open.ok() || open.value().type != MsgType::kOpenReply) {
    std::fprintf(stderr, "repl open failed\n");
    std::exit(1);
  }

  FollowerOptions fopts;
  fopts.primary_host = "127.0.0.1";
  fopts.primary_port = server.port();
  fopts.session = session;
  fopts.session_options = BenchSessionOptions();
  fopts.session_options.wal_dir = froot + "/" + session;
  fopts.session_options.wal_fsync = false;
  FollowerManager follower(ds.program, fopts);
  Status fstart = follower.Start();
  if (!fstart.ok()) {
    std::fprintf(stderr, "follower start: %s\n", fstart.ToString().c_str());
    std::exit(1);
  }

  Gauge* lag = MetricsRegistry::Global().GetGauge("repl.lag.records");
  auto await = [&](const char* what, auto pred) {
    Timer t;
    while (!pred()) {
      if (t.ElapsedSeconds() > 30.0) {
        std::fprintf(stderr, "FAIL: replication never %s (position %llu, "
                     "lag %lld)\n",
                     what, (unsigned long long)follower.position(),
                     (long long)lag->Value());
        std::exit(1);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  };

  RunResult result;
  Histogram latency;
  Timer timer;
  double primary_cost = 0.0;
  uint64_t seq = 0;
  for (const EvidenceDelta& delta : deltas) {
    NetRequest req;
    req.type = MsgType::kApplyDelta;
    req.session = session;
    req.delta = delta;
    Timer t;
    auto r = client.CallWithRetry(req);
    if (!r.ok() || r.value().type != MsgType::kDeltaReply) {
      std::fprintf(stderr, "repl delta failed\n");
      std::exit(1);
    }
    primary_cost = r.value().map_cost;
    ++seq;
    // The follower must catch up to this delta, and the primary's lag
    // gauge must drain to 0 (it refreshes on pump and on ack).
    await("caught up", [&] { return follower.position() >= seq; });
    await("drained its lag", [&] { return lag->Value() == 0; });
    latency.RecordAlways(t.ElapsedSeconds());
  }
  result.seconds = timer.ElapsedSeconds();
  result.latency = latency.Snapshot();

  double follower_cost = 0.0;
  {
    std::lock_guard<std::mutex> lock(follower.replica()->mu());
    InferenceSession* s = follower.replica()->session();
    if (s != nullptr) follower_cost = s->map_cost();
  }
  result.final_cost = follower_cost;
  result.cost_consistent = std::fabs(follower_cost - primary_cost) <= 1e-6;
  if (!result.cost_consistent) {
    std::fprintf(stderr,
                 "FAIL: follower cost %.6f != primary cost %.6f\n",
                 follower_cost, primary_cost);
  }
  std::printf("  replicated: follower matched the primary after each of "
              "%llu deltas (lag drained to 0 every time)\n",
              (unsigned long long)seq);
  follower.Stop();
  server.Stop();
  return result;
}

}  // namespace

int main() {
  PrintHeader("Net serving: concurrent wire clients vs in-process manager");
  Dataset ds = NetRc();
  EvidenceDb accumulated = ds.evidence;
  std::vector<EvidenceDelta> deltas = MakeDeltas(ds, &accumulated);

  // The single source of truth every session must land on.
  EngineOptions eopts;
  eopts.search_mode = SearchMode::kComponentAware;
  eopts.grounding.lazy_closure = false;
  eopts.total_flips = kFlips;
  eopts.seed = 42;
  TuffyEngine engine(ds.program, accumulated, eopts);
  auto fresh = engine.Run();
  if (!fresh.ok()) {
    std::fprintf(stderr, "fresh run failed: %s\n",
                 fresh.status().ToString().c_str());
    return 1;
  }
  const double fresh_cost = fresh.value().total_cost;
  std::printf("fresh MAP cost over final evidence: %.4f\n", fresh_cost);

  bool all_match = true;
  for (int clients : kClientCounts) {
    std::vector<MetricSample> net_base = MetricsBaseline();
    RunResult net = RunNet(ds, deltas, clients);
    EmitRow("net", clients, net, fresh_cost, net_base);
    std::vector<MetricSample> inproc_base = MetricsBaseline();
    RunResult inproc = RunInProcess(ds, deltas, clients);
    EmitRow("inproc", clients, inproc, fresh_cost, inproc_base);
    for (const RunResult* r : {&net, &inproc}) {
      if (!r->cost_consistent ||
          std::fabs(r->final_cost - fresh_cost) > 1e-6) {
        all_match = false;
      }
    }
    const double ratio =
        (net.seconds > 0 && inproc.seconds > 0)
            ? inproc.seconds / net.seconds
            : 0.0;
    std::printf("  %2d clients: wire throughput is %.2fx in-process\n",
                clients, ratio);
  }

  // Replication lesion: the same stream against a durable primary with a
  // hot standby attached — every delta must replicate, the lag gauge
  // must drain to 0, and the follower must land on the fresh MAP cost.
  std::vector<MetricSample> repl_base = MetricsBaseline();
  RunResult repl = RunReplication(ds, deltas);
  EmitRow("replicated", 1, repl, fresh_cost, repl_base);
  if (!repl.cost_consistent ||
      std::fabs(repl.final_cost - fresh_cost) > 1e-6) {
    all_match = false;
  }

  if (!all_match) {
    std::fprintf(stderr,
                 "FAIL: a session's final MAP cost diverged from the "
                 "from-scratch run\n");
    return 1;
  }
  std::printf("all sessions converged to the fresh MAP cost\n");
  return 0;
}
