// Network serving benchmark: N ∈ {1, 8, 64} concurrent clients, each
// with its own session, streaming relabel deltas through the net/ front
// end on loopback, versus the same workload driven straight into an
// in-process SessionManager. Every client runs the identical delta
// sequence, so all sessions must converge to the same final MAP cost —
// which is also checked against one from-scratch engine run over the
// accumulated evidence (the wire must not change inference).
//
// BENCH_JSON schema (one line per system × client count):
//   {"bench":"net_serving","system":"net"|"inproc","clients":N,
//    "deltas_per_sec":...,"p50_ms":...,"p99_ms":...,
//    "total_deltas":...,"seconds":...,"final_cost":...,
//    "fresh_cost":...}
// p50/p99 are client-observed per-delta latencies (for the net rows
// that includes framing, loopback, queueing, and the reply).

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "serve/session_manager.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace tuffy;
using namespace tuffy::bench;

namespace {

constexpr uint64_t kFlips = 60000;
constexpr int kDeltasPerClient = 16;
const std::vector<int> kClientCounts = {1, 8, 64};

Dataset NetRc() {
  RcParams p;
  p.num_clusters = 4;
  p.papers_per_cluster = 6;
  // 6 categories so both relabel targets ("Networking", "Theory") exist
  // in the interned domain.
  p.num_categories = 6;
  p.labeled_fraction = 0.6;
  auto r = MakeRcDataset(p);
  if (!r.ok()) {
    std::fprintf(stderr, "RC generation failed: %s\n",
                 r.status().ToString().c_str());
    std::exit(1);
  }
  return r.TakeValue();
}

SessionOptions BenchSessionOptions() {
  SessionOptions opts;
  opts.total_flips = kFlips;
  opts.seed = 42;
  return opts;
}

/// The relabel stream every client applies, in order. Identical across
/// clients so every session ends in the same state.
std::vector<EvidenceDelta> MakeDeltas(const Dataset& ds,
                                      EvidenceDb* accumulated) {
  PredicateId cat = ds.program.FindPredicate("cat").value();
  std::vector<GroundAtom> labels;
  for (const auto& [atom, truth] : ds.evidence.entries()) {
    if (atom.pred == cat && truth) labels.push_back(atom);
  }
  ConstantId cat_a = ds.program.symbols().Find("Networking");
  ConstantId cat_b = ds.program.symbols().Find("Theory");
  if (cat_a < 0 || cat_b < 0) {
    std::fprintf(stderr, "relabel categories missing from the domain\n");
    std::exit(1);
  }
  Rng rng(7);
  std::vector<EvidenceDelta> deltas;
  for (int d = 0; d < kDeltasPerClient; ++d) {
    GroundAtom victim = labels[rng.Uniform(labels.size())];
    EvidenceDelta delta;
    delta.Retract(victim);
    GroundAtom relabeled = victim;
    relabeled.args[1] = relabeled.args[1] == cat_a ? cat_b : cat_a;
    delta.Assert(relabeled, true);
    deltas.push_back(delta);
    if (accumulated != nullptr) {
      accumulated->Remove(victim);
      accumulated->Add(relabeled, true);
    }
    labels[rng.Uniform(labels.size())] = relabeled;
  }
  return deltas;
}

struct RunResult {
  double seconds = 0.0;
  double final_cost = 0.0;
  bool cost_consistent = true;
  HistogramSnapshot latency;
};

void EmitRow(const char* system, int clients, const RunResult& r,
             double fresh_cost, const std::vector<MetricSample>& base) {
  const double total = static_cast<double>(clients) * kDeltasPerClient;
  BenchJson row("net_serving");
  row.Str("system", system)
      .Int("clients", static_cast<uint64_t>(clients))
      .Num("deltas_per_sec", total / r.seconds, 1)
      .Num("p50_ms", r.latency.Percentile(0.50) * 1e3, 3)
      .Num("p99_ms", r.latency.Percentile(0.99) * 1e3, 3)
      .Int("total_deltas", static_cast<uint64_t>(total))
      .Num("seconds", r.seconds)
      .Num("final_cost", r.final_cost)
      .Num("fresh_cost", fresh_cost)
      .Metrics(base)
      .Emit();
}

/// Drives `clients` concurrent sessions over the wire. Sessions are
/// opened before the clock starts; only the delta stream is timed.
RunResult RunNet(const Dataset& ds,
                 const std::vector<EvidenceDelta>& deltas, int clients) {
  ServerOptions opts;
  opts.session = BenchSessionOptions();
  opts.num_workers =
      std::max(2u, std::thread::hardware_concurrency());
  opts.max_queue = static_cast<size_t>(clients) * 2 + 16;
  Server server(ds.program, ds.evidence, opts);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "server start: %s\n", started.ToString().c_str());
    std::exit(1);
  }

  std::vector<Client> conns(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    Status st = conns[c].Connect("127.0.0.1", server.port());
    if (!st.ok()) {
      std::fprintf(stderr, "connect: %s\n", st.ToString().c_str());
      std::exit(1);
    }
    auto open = conns[c].OpenSession("bench-" + std::to_string(c));
    if (!open.ok() || open.value().type != MsgType::kOpenReply) {
      std::fprintf(stderr, "open %d failed\n", c);
      std::exit(1);
    }
  }

  RunResult result;
  // Histogram records are lock-free, so every client thread shares one.
  Histogram latency;
  std::mutex mu;
  Timer timer;
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      double cost = 0.0;
      bool ok = true;
      const std::string session = "bench-" + std::to_string(c);
      for (const EvidenceDelta& delta : deltas) {
        Timer t;
        auto r = conns[c].ApplyDelta(session, delta);
        // Overload shedding is retryable by contract; the bench retries
        // so every delta lands and ordering per session still holds.
        while (r.ok() && r.value().type == MsgType::kError &&
               r.value().retryable) {
          r = conns[c].ApplyDelta(session, delta);
        }
        if (!r.ok() || r.value().type != MsgType::kDeltaReply) {
          ok = false;
          break;
        }
        latency.RecordAlways(t.ElapsedSeconds());
        cost = r.value().map_cost;
      }
      std::lock_guard<std::mutex> lock(mu);
      if (!ok) {
        result.cost_consistent = false;
      } else if (result.final_cost == 0.0) {
        result.final_cost = cost;
      } else if (std::fabs(result.final_cost - cost) > 1e-6) {
        result.cost_consistent = false;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  result.seconds = timer.ElapsedSeconds();
  result.latency = latency.Snapshot();

  ServerMetrics m = server.metrics();
  std::printf("  net %2d clients: server p50 %.3f ms, p99 %.3f ms, "
              "queue peak %zu, %llu overloaded\n",
              clients, m.delta_p50_ms, m.delta_p99_ms, m.queue_peak,
              (unsigned long long)m.overloaded);
  server.Stop();
  return result;
}

/// The same workload without the wire: N threads calling straight into
/// a SessionManager.
RunResult RunInProcess(const Dataset& ds,
                       const std::vector<EvidenceDelta>& deltas,
                       int clients) {
  SessionManagerOptions mopts;
  mopts.num_threads = 1;
  SessionManager manager(mopts);
  for (int c = 0; c < clients; ++c) {
    auto open = manager.Open("bench-" + std::to_string(c), ds.program,
                             ds.evidence, BenchSessionOptions());
    if (!open.ok()) {
      std::fprintf(stderr, "inproc open %d: %s\n", c,
                   open.status().ToString().c_str());
      std::exit(1);
    }
  }

  RunResult result;
  Histogram latency;
  std::mutex mu;
  Timer timer;
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      double cost = 0.0;
      bool ok = true;
      const std::string session = "bench-" + std::to_string(c);
      for (const EvidenceDelta& delta : deltas) {
        Timer t;
        auto r = manager.ApplyDelta(session, delta);
        if (!r.ok()) {
          ok = false;
          break;
        }
        latency.RecordAlways(t.ElapsedSeconds());
        cost = r.value().map_cost;
      }
      std::lock_guard<std::mutex> lock(mu);
      if (!ok) {
        result.cost_consistent = false;
      } else if (result.final_cost == 0.0) {
        result.final_cost = cost;
      } else if (std::fabs(result.final_cost - cost) > 1e-6) {
        result.cost_consistent = false;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  result.seconds = timer.ElapsedSeconds();
  result.latency = latency.Snapshot();
  return result;
}

}  // namespace

int main() {
  PrintHeader("Net serving: concurrent wire clients vs in-process manager");
  Dataset ds = NetRc();
  EvidenceDb accumulated = ds.evidence;
  std::vector<EvidenceDelta> deltas = MakeDeltas(ds, &accumulated);

  // The single source of truth every session must land on.
  EngineOptions eopts;
  eopts.search_mode = SearchMode::kComponentAware;
  eopts.grounding.lazy_closure = false;
  eopts.total_flips = kFlips;
  eopts.seed = 42;
  TuffyEngine engine(ds.program, accumulated, eopts);
  auto fresh = engine.Run();
  if (!fresh.ok()) {
    std::fprintf(stderr, "fresh run failed: %s\n",
                 fresh.status().ToString().c_str());
    return 1;
  }
  const double fresh_cost = fresh.value().total_cost;
  std::printf("fresh MAP cost over final evidence: %.4f\n", fresh_cost);

  bool all_match = true;
  for (int clients : kClientCounts) {
    std::vector<MetricSample> net_base = MetricsBaseline();
    RunResult net = RunNet(ds, deltas, clients);
    EmitRow("net", clients, net, fresh_cost, net_base);
    std::vector<MetricSample> inproc_base = MetricsBaseline();
    RunResult inproc = RunInProcess(ds, deltas, clients);
    EmitRow("inproc", clients, inproc, fresh_cost, inproc_base);
    for (const RunResult* r : {&net, &inproc}) {
      if (!r->cost_consistent ||
          std::fabs(r->final_cost - fresh_cost) > 1e-6) {
        all_match = false;
      }
    }
    const double ratio =
        (net.seconds > 0 && inproc.seconds > 0)
            ? inproc.seconds / net.seconds
            : 0.0;
    std::printf("  %2d clients: wire throughput is %.2fx in-process\n",
                clients, ratio);
  }
  if (!all_match) {
    std::fprintf(stderr,
                 "FAIL: a session's final MAP cost diverged from the "
                 "from-scratch run\n");
    return 1;
  }
  std::printf("all sessions converged to the fresh MAP cost\n");
  return 0;
}
