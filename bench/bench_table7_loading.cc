// Table 7: effect of batch data loading and parallelism (Section 3.3).
//
// Paper values (execution seconds):   IE    RC
//   Tuffy-batch (one comp at a time)  448   133
//   Tuffy (FFD batch loading)         117   77
//   Tuffy+parallelism (8 cores)       28    42
//
// Shape to reproduce: loading components one by one from the RDBMS
// re-reads shared pages and dominates runtime; FFD batch loading
// amortizes the I/O; adding threads then cuts the search time by
// roughly the core count.

#include "bench/bench_common.h"

using namespace tuffy;         // NOLINT
using namespace tuffy::bench;  // NOLINT

namespace {

struct ConfigResult {
  double load;
  double search;
};

ConfigResult RunConfig(const Dataset& ds, bool batch, int threads) {
  EngineOptions opts;
  opts.search_mode = SearchMode::kComponentAware;
  opts.total_flips = 500000;
  opts.rounds = 1;
  opts.num_threads = threads;
  opts.batch_loading = batch;
  opts.simulate_loading_io = true;
  // Tight buffer and realistic page latency: loading components one at a
  // time re-fetches the shared pages (clauses of different components
  // interleave on disk), which is the effect Table 7 measures.
  opts.loading_io_latency_us = 100;
  opts.loading_buffer_frames = 8;
  EngineResult r = MustRun(ds, opts);
  return ConfigResult{r.load_seconds, r.search_seconds};
}

}  // namespace

int main() {
  PrintHeader("Table 7: batch loading and parallelism (seconds)");
  std::printf("%-26s %28s %28s\n", "", "IE (load/search/total)",
              "RC (load/search/total)");
  Dataset ie = BenchIe();
  Dataset rc = BenchRc();

  auto row = [&](const char* label, bool batch, int threads) {
    std::printf("%-26s", label);
    for (const Dataset* ds : {&ie, &rc}) {
      ConfigResult r = RunConfig(*ds, batch, threads);
      std::printf(" %9.2f/%8.2f/%8.2f", r.load, r.search, r.load + r.search);
      std::fflush(stdout);
    }
    std::printf("\n");
  };
  row("Tuffy-batch (per-comp)", /*batch=*/false, 1);
  row("Tuffy (FFD batches)", /*batch=*/true, 1);
  row("Tuffy+parallelism (8)", /*batch=*/true, 8);

  std::printf(
      "\nShape check vs paper Table 7: per-component loading pays repeated\n"
      "page reads (components share pages in the clause warehouse); batch\n"
      "loading amortizes them; threads then divide the search time.\n");
  return 0;
}
