// Ablation: the lazy-inference active closure (Appendix A.3). Compares
// grounding with the closure (Tuffy/Alchemy default) against exhaustive
// grounding of every evidence-undetermined clause.
//
// Shape: the closure sharply reduces the number of emitted ground
// clauses (and hence search-state size) at a small closure-iteration
// cost; MAP quality is preserved because pruned clauses are satisfied
// under the all-false default the search starts from.

#include "bench/bench_common.h"
#include "ground/bottom_up_grounder.h"
#include "util/timer.h"

using namespace tuffy;         // NOLINT
using namespace tuffy::bench;  // NOLINT

int main() {
  PrintHeader("Ablation: lazy-closure grounding vs exhaustive grounding");
  std::printf("%-10s %12s %12s %12s %12s %10s %10s\n", "dataset",
              "lazy_clauses", "eager_claus", "lazy_atoms", "eager_atoms",
              "lazy_s", "eager_s");
  for (const Dataset& ds : AllBenchDatasets()) {
    GroundingOptions lazy;
    lazy.lazy_closure = true;
    Timer t1;
    BottomUpGrounder g1(ds.program, ds.evidence, lazy);
    auto r1 = g1.Ground();
    double s1 = t1.ElapsedSeconds();
    if (!r1.ok()) return 1;

    GroundingOptions eager;
    eager.lazy_closure = false;
    Timer t2;
    BottomUpGrounder g2(ds.program, ds.evidence, eager);
    auto r2 = g2.Ground();
    double s2 = t2.ElapsedSeconds();
    if (!r2.ok()) return 1;

    std::printf("%-10s %12zu %12zu %12zu %12zu %10.3f %10.3f\n",
                ds.name.c_str(), r1.value().clauses.num_clauses(),
                r2.value().clauses.num_clauses(),
                r1.value().atoms.num_atoms(), r2.value().atoms.num_atoms(),
                s1, s2);
  }
  return 0;
}
